open Expirel_core

type event =
  | Row_expired of {
      subscription : string;
      tuple : Tuple.t;
      at : Time.t;
    }
  | Row_appeared of {
      subscription : string;
      tuple : Tuple.t;
      texp : Time.t;
      at : Time.t;
    }
  | Refreshed of {
      subscription : string;
      at : Time.t;
    }

type handler = event -> unit

type watch = {
  expr : Algebra.t;
  handler : handler;
  mutable result : Eval.result;  (* materialised at [synced] *)
}

type t = {
  db : Database.t;
  watches : (string, watch) Hashtbl.t;
}

let create db = { db; watches = Hashtbl.create 8 }

(* Evaluate against the stored tables as they will stand at [tau] —
   valid for tau at or beyond the database clock. *)
let env_at t tau name =
  Option.map (fun tbl -> Table.snapshot tbl ~tau) (Database.table t.db name)

let subscribe t ~name expr handler =
  if Hashtbl.mem t.watches name then
    invalid_arg (Printf.sprintf "Subscription.subscribe: %s exists" name)
  else
    let result = Eval.run ~env:(env_at t (Database.now t.db)) ~tau:(Database.now t.db) expr in
    Hashtbl.replace t.watches name { expr; handler; result }

let unsubscribe t name =
  if Hashtbl.mem t.watches name then begin
    Hashtbl.remove t.watches name;
    true
  end
  else false

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.watches []
  |> List.sort String.compare

let current t name =
  match Hashtbl.find_opt t.watches name with
  | Some w -> Relation.exp (Database.now t.db) w.result.Eval.relation
  | None -> raise Not_found

(* Earliest finite row expiration in the watch's live contents. *)
let next_row_expiry ~after relation =
  Relation.fold
    (fun _ texp acc ->
      if Time.is_finite texp && Time.(texp > after) then Time.min acc texp
      else acc)
    relation Time.Inf

(* The change-time walk, parameterised over the event sink and over
   where the materialisation state lives: [drive] commits the walk to
   the watch, [forecast_events] replays the identical walk against a
   local copy — the forecast is exact because the future is. *)
let simulate t name w ~from ~to_ ~emit =
  let result = ref w.result in
  let rec go now =
    let live = Relation.exp now !result.Eval.relation in
    let next_expiry = next_row_expiry ~after:now live in
    let next = Time.min next_expiry !result.Eval.texp in
    if Time.(next > to_) || Time.is_infinite next then !result
    else begin
      let at = next in
      (* Expirations at this instant fire first. *)
      Relation.iter
        (fun tuple texp ->
          if Time.equal texp at then
            emit (Row_expired { subscription = name; tuple; at }))
        live;
      let survivors = Relation.exp at live in
      if Time.(!result.Eval.texp <= at) then begin
        (* The materialisation is invalid from here: refresh locally and
           report what (re)appeared. *)
        let refreshed = Eval.run ~env:(env_at t at) ~tau:at w.expr in
        emit (Refreshed { subscription = name; at });
        Relation.iter
          (fun tuple texp ->
            if not (Relation.mem tuple survivors) then
              emit (Row_appeared { subscription = name; tuple; texp; at }))
          refreshed.Eval.relation;
        result := refreshed
      end;
      go at
    end
  in
  go from

let drive t name w ~from ~to_ =
  w.result <- simulate t name w ~from ~to_ ~emit:w.handler

let forecast_events t ~until =
  let from = Database.now t.db in
  if Time.is_infinite until || Time.(until <= from) then 0
  else begin
    let count = ref 0 in
    List.iter
      (fun name ->
        let w = Hashtbl.find t.watches name in
        ignore
          (simulate t name w ~from ~to_:until ~emit:(fun _ -> incr count)
            : Eval.result))
      (names t);
    !count
  end

let deliver_until t target =
  if Time.is_infinite target then
    invalid_arg "Subscription.deliver_until: infinite time"
  else if Time.(target < Database.now t.db) then
    invalid_arg "Subscription.deliver_until: moving backwards"
  else begin
    let from = Database.now t.db in
    (* Replay the continuous queries' change times before the storage
       physically removes rows (eager policy): refreshes at intermediate
       instants must see everything that was live then. *)
    List.iter
      (fun name -> drive t name (Hashtbl.find t.watches name) ~from ~to_:target)
      (names t)
  end

let advance t target =
  deliver_until t target;
  Database.advance_to t.db target
