(** Continuous queries over expiring data: subscribe a handler to an
    algebra expression and receive events at the {e exact} logical times
    at which the materialised result changes — rows leaving as they
    expire (the abstract's "triggers fire due to the expiration of a
    tuple", applied to query results), rows (re)appearing when a
    non-monotonic result is locally refreshed at [texp(e)].

    Because all future expirations are known, no polling is involved:
    {!advance} walks the exact change times in order. *)

open Expirel_core

type event =
  | Row_expired of {
      subscription : string;
      tuple : Tuple.t;
      at : Time.t;  (** the row's expiration time *)
    }
  | Row_appeared of {
      subscription : string;
      tuple : Tuple.t;
      texp : Time.t;
      at : Time.t;
    }
  | Refreshed of {
      subscription : string;
      at : Time.t;  (** the [texp(e)] that forced the refresh *)
    }

type handler = event -> unit

type t

val create : Database.t -> t
(** The manager drives (and stays synchronised with) the database's
    clock: move time only through {!advance}. *)

val subscribe : t -> name:string -> Algebra.t -> handler -> unit
(** Materialises the expression now and starts watching it.
    @raise Invalid_argument when the name is taken
    @raise Errors.Unknown_relation / {!Errors.Arity_mismatch} like
    {!Eval.run} *)

val unsubscribe : t -> string -> bool
val names : t -> string list

val current : t -> string -> Relation.t
(** The subscription's result at the current time.
    @raise Not_found for unknown names *)

val advance : t -> Time.t -> unit
(** Advances the database clock and fires, per subscription (in name
    order) and in ascending time order within each, every change event
    in the interval.  Ties at one instant fire expirations first, then
    the refresh, then appearances.
    @raise Invalid_argument when moving backwards or to [Inf] *)

val forecast_events : t -> until:Time.t -> int
(** How many events an {!advance} (or {!deliver_until}) to [until]
    would fire, across every subscription — without firing handlers or
    touching any watch or clock state.  Exact, not an estimate: the
    change-time walk is replayed against a private copy of each watch's
    materialisation, and logical time makes the future deterministic.
    [0] when [until] is infinite or not beyond the current clock.  This
    is the fan-out forecast the observability horizon exports. *)

val deliver_until : t -> Time.t -> unit
(** Exactly {!advance}'s event delivery — every change event in the
    interval from the current clock up to the target, same ordering —
    but {e without} moving the database clock.  For callers that move
    the clock through another manager immediately afterwards (the
    network server advances through the interpreter so integrity
    constraints and maintained views stay in step); calling this and
    never advancing leaves the watches materialised ahead of the clock,
    which is harmless: the next delivery resumes from the clock.
    @raise Invalid_argument when moving backwards or to [Inf] *)
