(** A catalogue of expiring tables with a logical clock, expiration
    policies (Section 3.2), expiration triggers and evaluation of
    algebra expressions against the current state.

    The clock only moves forward.  Under the {!policy.Eager} policy,
    advancing the clock physically removes expired tuples immediately and
    fires triggers at the tuples' expiration times; under {!policy.Lazy},
    expired tuples merely become invisible (snapshots always filter
    through [exp_tau]) and are reclaimed — and their triggers fired, late
    — on the next {!vacuum}. *)

open Expirel_core
open Expirel_index

type policy =
  | Eager
  | Lazy

type t

val create :
  ?policy:policy -> ?backend:Expiration_index.backend -> unit -> t
(** Defaults: [Eager], [`Heap]. *)

val policy : t -> policy
val now : t -> Time.t
val triggers : t -> Trigger.registry

val generation : t -> int
(** Catalog generation: a monotone counter bumped by {!create_table},
    {!drop_table} and {!bump_generation}.  Plan caches key on it so any
    DDL (including secondary-index changes, which callers signal via
    {!bump_generation}) invalidates every cached physical plan in
    O(1). *)

val bump_generation : t -> unit
(** Explicitly advance the catalog generation — called by layers that
    change planning-relevant state the database cannot see itself (e.g.
    creating or dropping a secondary index on a table). *)

val create_table : t -> name:string -> columns:string list -> Table.t
(** @raise Invalid_argument when the name is taken *)

val drop_table : t -> string -> bool
val table : t -> string -> Table.t option
val table_exn : t -> string -> Table.t
val table_names : t -> string list

val pending_expirations : t -> int
(** Sum of {!Table.pending_expirations} over every table: the total
    expiration-index depth (heap entries / timer-wheel occupancy). *)

val live_rows : t -> int
(** Sum of {!Table.live_estimate} over every table — the denominator of
    the "what fraction of the database expires soon?" storm ratio. *)

val expiring_within : t -> bounds:int array -> (string * int array) list
(** Per-table forward expiration profile at the current clock, in table
    name order: {!Table.expiring_within} for every table.  [bounds] are
    ascending tick deltas ([max_int] = +Inf); each table's array sums to
    its live count. *)

val inserted_total : t -> int
(** Rows accepted by {!insert} (and its wrappers) since creation — a
    monotone arrival counter for churn-rate telemetry. *)

val expired_total : t -> int
(** Expirations observed since creation: counted at {!advance_to} under
    the eager policy, at {!vacuum} under the lazy one — monotone, for
    churn-rate telemetry. *)

val insert : t -> string -> Tuple.t -> texp:Time.t -> unit
(** @raise Errors.Unknown_relation / [Invalid_argument] on arity issues.
    @raise Invalid_argument when [texp <= now] (the tuple would be born
    expired) *)

val insert_ttl : t -> string -> Tuple.t -> ttl:int -> unit
(** Expiration time [now + ttl].
    @raise Invalid_argument when [ttl <= 0] *)

val insert_values : t -> string -> Value.t list -> texp:Time.t -> unit
val delete : t -> string -> Tuple.t -> bool

val advance_to : t -> Time.t -> unit
(** Moves the clock.  Eager policy: expires due tuples across all tables
    in global [(texp, table, tuple)] order, firing triggers with
    [fired_at] equal to each tuple's expiration time.  Lazy policy: just
    moves the clock.
    @raise Invalid_argument when moving backwards or to [Inf] *)

val tick : t -> unit
(** [advance_to] by one. *)

val vacuum : t -> int
(** Physically reclaims expired tuples in every table (the lazy policy's
    delayed removal), firing their triggers with [fired_at = now].
    Returns the number reclaimed.  A no-op under [Eager]. *)

val snapshot : t -> string -> Relation.t
(** Logical state of a table at the current clock. *)

val env : t -> Eval.env
(** Evaluation environment over the current logical states. *)

val query :
  ?strategy:Aggregate.strategy ->
  ?probe:(string -> (unit -> Eval.result) -> Eval.result) ->
  t -> Algebra.t -> Eval.result
(** Evaluates at the current clock.  [probe] is passed to {!Eval.run}
    to time each operator node. *)
