open Expirel_core
open Expirel_index

module Tuple_hash = struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end

module Tuple_tbl = Hashtbl.Make (Tuple_hash)

type t = {
  name : string;
  columns : string list;
  rows : (Tuple.t * Time.t) Tuple_tbl.t;  (* keyed by tuple (set semantics) *)
  ids : (int, Tuple.t) Hashtbl.t;  (* expiration-index id -> tuple *)
  by_tuple : int Tuple_tbl.t;  (* tuple -> its current index id *)
  index : Expiration_index.t;
  secondary : (int, Ordered_index.t) Hashtbl.t;  (* column -> index *)
  mutable next_id : int;
  mutable generation : int;  (* bumped on every physical row change *)
  mutable cached_snapshot : (int * Relation.t) option;
      (* A full-table snapshot is independent of [tau] as long as every
         physical row is live at [tau] (i.e. [next_expiry > tau]), so it
         can be cached across reads and invalidated by generation. *)
}

let create ?(backend = `Heap) ~name ~columns () =
  if columns = [] then invalid_arg "Table.create: no columns"
  else
    { name;
      columns;
      rows = Tuple_tbl.create 64;
      ids = Hashtbl.create 64;
      by_tuple = Tuple_tbl.create 64;
      index = Expiration_index.create backend;
      secondary = Hashtbl.create 4;
      next_id = 0;
      generation = 0;
      cached_snapshot = None
    }

let generation t = t.generation
let touch t = t.generation <- t.generation + 1

let name t = t.name
let columns t = t.columns
let arity t = List.length t.columns

let column_position t column =
  let rec find i = function
    | [] -> None
    | c :: rest -> if String.equal c column then Some i else find (i + 1) rest
  in
  find 1 t.columns

let unindex t tuple =
  match Tuple_tbl.find_opt t.by_tuple tuple with
  | Some id ->
    Expiration_index.remove t.index ~id;
    Hashtbl.remove t.ids id;
    Tuple_tbl.remove t.by_tuple tuple
  | None -> ()

let secondary_insert t tuple =
  Hashtbl.iter (fun _ idx -> Ordered_index.insert idx tuple) t.secondary

let secondary_remove t tuple =
  Hashtbl.iter (fun _ idx -> Ordered_index.remove idx tuple) t.secondary

let insert t tuple ~texp =
  if Tuple.arity tuple <> arity t then
    invalid_arg
      (Printf.sprintf "Table.insert(%s): tuple arity %d, table arity %d" t.name
         (Tuple.arity tuple) (arity t));
  touch t;
  unindex t tuple;
  secondary_insert t tuple;
  Tuple_tbl.replace t.rows tuple (tuple, texp);
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.ids id tuple;
  Tuple_tbl.replace t.by_tuple tuple id;
  Expiration_index.add t.index ~id ~texp

let delete t tuple =
  if Tuple_tbl.mem t.rows tuple then begin
    touch t;
    unindex t tuple;
    secondary_remove t tuple;
    Tuple_tbl.remove t.rows tuple;
    true
  end
  else false

let texp_of t tuple = Option.map snd (Tuple_tbl.find_opt t.rows tuple)
let physical_count t = Tuple_tbl.length t.rows
let pending_expirations t = Expiration_index.size t.index

let live_count t ~tau =
  Tuple_tbl.fold
    (fun _ (_, texp) n -> if Time.(texp > tau) then n + 1 else n)
    t.rows 0

(* Every physical row live at [tau]?  Then the snapshot is the whole
   table, independent of [tau].  (Under lazy removal, expired rows keep
   their expiration-index entries until vacuumed, so [next_expiry <= tau]
   and the fast path correctly stays off.) *)
let all_live t ~tau =
  match Expiration_index.next_expiry t.index with
  | None -> true
  | Some e -> Time.(e > tau)

let full_snapshot t =
  match t.cached_snapshot with
  | Some (g, r) when g = t.generation -> r
  | Some _ | None ->
    let r =
      Tuple_tbl.fold
        (fun _ (tuple, texp) acc -> Relation.add tuple ~texp acc)
        t.rows
        (Relation.empty ~arity:(arity t))
    in
    t.cached_snapshot <- Some (t.generation, r);
    r

let physical_relation t = full_snapshot t

(* Live cardinality without the O(n) fold: O(1) when nothing expired,
   otherwise a binary-search cut per chunk of the (generation-cached)
   physical relation's texp-sorted columnar form — the same chunks the
   batch executor scans, so planning warms execution's cache. *)
let live_estimate t ~tau =
  if all_live t ~tau then physical_count t
  else Relation.live_count_at (full_snapshot t) ~tau

(* The forward expiration profile: per-bucket counts of live rows by
   ticks-to-expiry.  Like [live_estimate], this never scans rows: each
   bucket boundary is a binary-search cut over the generation-cached
   physical relation's texp-sorted chunks, so the whole histogram costs
   O(chunks · buckets · log rows).  [bounds] must be ascending;
   [max_int] means +Inf and its bucket also holds never-expiring rows. *)
let expiring_within t ~now ~bounds =
  let n = Array.length bounds in
  let cum = Array.make n 0 in
  (match now with
   | Time.Inf -> ()  (* nothing is live at infinity *)
   | Time.Fin v ->
     let chunks = Relation.sorted_chunks (physical_relation t) in
     Array.iter
       (fun ch ->
         let texps = Relation.chunk_texps ch in
         let len = Relation.chunk_len ch in
         let c0 = Relation.live_cut texps ~tau:now 0 len in
         Array.iteri
           (fun i bound ->
             let upto =
               (* [bound > max_int - v] saturates: the window reaches
                  past every finite time, so every physical row beyond
                  the [now] cut belongs to it. *)
               if bound = max_int || bound > max_int - v then len
               else Relation.live_cut texps ~tau:(Time.of_int (v + bound)) 0 len
             in
             cum.(i) <- cum.(i) + (upto - c0))
           bounds)
       chunks);
  (* cumulative cuts -> per-bucket counts *)
  Array.mapi (fun i c -> if i = 0 then c else c - cum.(i - 1)) cum

let snapshot t ~tau =
  if all_live t ~tau then full_snapshot t
  else
    Tuple_tbl.fold
      (fun _ (tuple, texp) acc ->
        if Time.(texp > tau) then Relation.add tuple ~texp acc else acc)
      t.rows
      (Relation.empty ~arity:(arity t))

let expire_upto t tau =
  let due = Expiration_index.expire_upto t.index tau in
  if due <> [] then touch t;
  List.filter_map
    (fun (id, texp) ->
      match Hashtbl.find_opt t.ids id with
      | Some tuple ->
        Hashtbl.remove t.ids id;
        Tuple_tbl.remove t.by_tuple tuple;
        Tuple_tbl.remove t.rows tuple;
        secondary_remove t tuple;
        Some (tuple, texp)
      | None -> None)
    due

let vacuum t ~tau = List.length (expire_upto t tau)

let next_expiry t = Expiration_index.next_expiry t.index

(* --- secondary indexes --- *)

let create_index t ~column =
  if column < 1 || column > arity t then
    invalid_arg
      (Printf.sprintf "Table.create_index(%s): column %d outside 1..%d" t.name
         column (arity t));
  let idx = Ordered_index.create ~column in
  Tuple_tbl.iter (fun _ (tuple, _) -> Ordered_index.insert idx tuple) t.rows;
  Hashtbl.replace t.secondary column idx

let drop_index t ~column = Hashtbl.remove t.secondary column
let has_index t ~column = Hashtbl.mem t.secondary column

let indexed_columns t =
  Hashtbl.fold (fun c _ acc -> c :: acc) t.secondary [] |> List.sort Int.compare

let secondary_exn t column =
  match Hashtbl.find_opt t.secondary column with
  | Some idx -> idx
  | None -> raise Not_found

let index_extrema t ~column = Ordered_index.extrema (secondary_exn t column)

(* Candidates come from the index over physical rows; re-attach texps and
   drop the expired.  [dropped], when given, counts the candidates the
   tau filter (or a concurrent delete) discarded. *)
let live_rows ?dropped t ~tau tuples =
  List.filter_map
    (fun tuple ->
      match Tuple_tbl.find_opt t.rows tuple with
      | Some (_, texp) when Time.(texp > tau) -> Some (tuple, texp)
      | Some _ | None ->
        (match dropped with Some r -> incr r | None -> ());
        None)
    tuples

let index_lookup ?dropped t ~column ~tau v =
  live_rows ?dropped t ~tau (Ordered_index.lookup (secondary_exn t column) v)

let index_range ?visited ?dropped t ~column ~tau ~lo ~hi =
  live_rows ?dropped t ~tau
    (Ordered_index.range ?visited (secondary_exn t column) ~lo ~hi)
