open Expirel_core

type plan =
  | Full_scan
  | Never_matches
  | Index_eq of {
      column : int;
      value : Value.t;
    }
  | Index_range of {
      column : int;
      lo : Ordered_index.bound;
      hi : Ordered_index.bound;
    }

let value_tag = function
  | Value.Null -> 0
  | Value.Bool _ -> 1
  | Value.Int _ -> 2
  | Value.Float _ -> 3
  | Value.Str _ -> 4

(* Sound only when the index's keys share the constant's constructor:
   Value.compare (the index order) then agrees with Value.cmp (the
   predicate order) on the covered keys. *)
let homogeneous table column v =
  match Table.index_extrema table ~column with
  | None -> true (* empty index: any plan is trivially complete *)
  | Some (lo, hi) -> value_tag lo = value_tag v && value_tag hi = value_tag v

(* A conjunct of the shape the index can serve: column-vs-constant. *)
let indexable table = function
  | Predicate.Cmp (op, Predicate.Col j, Predicate.Const v)
    when Table.has_index table ~column:j ->
    Some (op, j, v)
  | Predicate.Cmp (op, Predicate.Const v, Predicate.Col j)
    when Table.has_index table ~column:j ->
    let flipped =
      match op with
      | Predicate.Lt -> Predicate.Gt
      | Predicate.Le -> Predicate.Ge
      | Predicate.Gt -> Predicate.Lt
      | Predicate.Ge -> Predicate.Le
      | (Predicate.Eq | Predicate.Neq) as o -> o
    in
    Some (flipped, j, v)
  | _ -> None

let plan table p =
  let cs = Predicate.conjuncts p in
  let null_conjunct = function
    | Predicate.Cmp (_, Predicate.Const Value.Null, _)
    | Predicate.Cmp (_, _, Predicate.Const Value.Null) ->
      true
    | _ -> false
  in
  if List.exists null_conjunct cs then Never_matches
  else
    let candidate c =
      match indexable table c with
      | Some (op, column, v) when homogeneous table column v ->
        (match op with
         | Predicate.Eq -> Some (Index_eq { column; value = v })
         | Predicate.Lt ->
           Some (Index_range
                   { column; lo = Ordered_index.Unbounded;
                     hi = Ordered_index.Exclusive v })
         | Predicate.Le ->
           Some (Index_range
                   { column; lo = Ordered_index.Unbounded;
                     hi = Ordered_index.Inclusive v })
         | Predicate.Gt ->
           Some (Index_range
                   { column; lo = Ordered_index.Exclusive v;
                     hi = Ordered_index.Unbounded })
         | Predicate.Ge ->
           Some (Index_range
                   { column; lo = Ordered_index.Inclusive v;
                     hi = Ordered_index.Unbounded })
         | Predicate.Neq -> None)
      | Some _ | None -> None
    in
    let plans = List.filter_map candidate cs in
    (* Prefer equality probes over ranges... *)
    (match List.find_opt (function Index_eq _ -> true | _ -> false) plans with
     | Some p -> p
     | None ->
       (* ...and intersect every range conjunct on the same column into
          one two-sided range. *)
       let tighter_lo a b =
         match a, b with
         | Ordered_index.Unbounded, x | x, Ordered_index.Unbounded -> x
         | (Ordered_index.Inclusive va | Ordered_index.Exclusive va),
           (Ordered_index.Inclusive vb | Ordered_index.Exclusive vb) ->
           let c = Value.compare va vb in
           if c > 0 then a
           else if c < 0 then b
           else (
             match a, b with
             | Ordered_index.Exclusive _, _ -> a
             | _, Ordered_index.Exclusive _ -> b
             | _ -> a)
       in
       let tighter_hi a b =
         match a, b with
         | Ordered_index.Unbounded, x | x, Ordered_index.Unbounded -> x
         | (Ordered_index.Inclusive va | Ordered_index.Exclusive va),
           (Ordered_index.Inclusive vb | Ordered_index.Exclusive vb) ->
           let c = Value.compare va vb in
           if c < 0 then a
           else if c > 0 then b
           else (
             match a, b with
             | Ordered_index.Exclusive _, _ -> a
             | _, Ordered_index.Exclusive _ -> b
             | _ -> a)
       in
       (match plans with
        | Index_range { column; _ } :: _ ->
          let merged =
            List.fold_left
              (fun (lo, hi) p ->
                match p with
                | Index_range r when r.column = column ->
                  tighter_lo lo r.lo, tighter_hi hi r.hi
                | Index_range _ | Index_eq _ | Full_scan | Never_matches ->
                  lo, hi)
              (Ordered_index.Unbounded, Ordered_index.Unbounded)
              plans
          in
          let lo, hi = merged in
          Index_range { column; lo; hi }
        | (Index_eq _ | Full_scan | Never_matches) :: _ | [] -> Full_scan))

type scan_stats = {
  mutable candidates : int;
  mutable expired_dropped : int;
  mutable index_visited : int;
}

let fresh_stats () = { candidates = 0; expired_dropped = 0; index_visited = 0 }

let select ?stats table ~tau p =
  let arity = Table.arity table in
  let of_candidates rows =
    (match stats with
     | Some s -> s.candidates <- s.candidates + List.length rows
     | None -> ());
    List.fold_left
      (fun acc (tuple, texp) ->
        if Predicate.eval p tuple then Relation.add tuple ~texp acc else acc)
      (Relation.empty ~arity) rows
  in
  (* The counter refs exist only on the profiled path; the [None] path
     passes nothing down and allocates nothing. *)
  let counted scan =
    match stats with
    | None -> scan None None
    | Some s ->
      let visited = ref 0 and dropped = ref 0 in
      let r = scan (Some visited) (Some dropped) in
      s.index_visited <- s.index_visited + !visited;
      s.expired_dropped <- s.expired_dropped + !dropped;
      r
  in
  match plan table p with
  | Never_matches -> Relation.empty ~arity
  | Full_scan ->
    let snap = Table.snapshot table ~tau in
    (match stats with
     | Some s ->
       let live = Relation.cardinal snap in
       s.candidates <- s.candidates + live;
       s.expired_dropped <-
         s.expired_dropped + (Table.physical_count table - live)
     | None -> ());
    Ops.select p snap
  | Index_eq { column; value } ->
    of_candidates
      (counted (fun _ dropped ->
           Table.index_lookup ?dropped table ~column ~tau value))
  | Index_range { column; lo; hi } ->
    of_candidates
      (counted (fun visited dropped ->
           Table.index_range ?visited ?dropped table ~column ~tau ~lo ~hi))

let eval ?(strategy = Aggregate.Exact) ~db ~tau expr =
  let rec go = function
    | Algebra.Base name -> Table.snapshot (Database.table_exn db name) ~tau
    | Algebra.Select (p, Algebra.Base name) ->
      select (Database.table_exn db name) ~tau p
    | Algebra.Select (p, e) -> Ops.select p (go e)
    | Algebra.Project (js, e) -> Ops.project js (go e)
    | Algebra.Product (l, r) -> Ops.product (go l) (go r)
    | Algebra.Union (l, r) -> Ops.union (go l) (go r)
    | Algebra.Join (p, l, r) -> Ops.join p (go l) (go r)
    | Algebra.Intersect (l, r) -> Ops.intersect (go l) (go r)
    | Algebra.Diff (l, r) -> Ops.diff (go l) (go r)
    | Algebra.Aggregate (group, f, e) ->
      fst (Ops.aggregate strategy ~tau ~group f (go e))
  in
  go expr

let pp_plan ppf = function
  | Full_scan -> Format.pp_print_string ppf "full-scan"
  | Never_matches -> Format.pp_print_string ppf "never-matches"
  | Index_eq { column; value } ->
    Format.fprintf ppf "index-eq(#%d = %a)" column Value.pp value
  | Index_range { column; lo; hi } ->
    let bound ppf = function
      | Ordered_index.Unbounded -> Format.pp_print_string ppf "_"
      | Ordered_index.Inclusive v -> Format.fprintf ppf "[%a]" Value.pp v
      | Ordered_index.Exclusive v -> Format.fprintf ppf "(%a)" Value.pp v
    in
    Format.fprintf ppf "index-range(#%d: %a..%a)" column bound lo bound hi
