(** A writer-preferring readers–writer lock.

    Guards a {!Database} (or any shared structure) so that concurrent
    snapshot reads proceed in parallel while clock advances and updates
    serialise: any number of readers may hold the lock together, a
    writer holds it alone, and once a writer is waiting no {e new}
    readers are admitted — so a steady stream of queries cannot starve
    an [ADVANCE].

    Built on stdlib [Mutex] + [Condition] only; safe under both systhreads
    and domains. *)

type t

val create : unit -> t

val read_lock : t -> unit
(** Blocks while a writer holds the lock or writers are waiting. *)

val read_unlock : t -> unit

val write_lock : t -> unit
(** Blocks until exclusive. *)

val write_unlock : t -> unit

val try_read_lock : t -> bool
(** Non-blocking acquire; [false] when a writer holds or awaits the
    lock.  Lets callers implement acquisition deadlines (the server's
    per-request timeout) by polling. *)

val try_write_lock : t -> bool

val with_read : t -> (unit -> 'a) -> 'a
(** Runs the thunk under the read lock, releasing on any exit. *)

val with_write : t -> (unit -> 'a) -> 'a

val readers : t -> int
(** Instantaneous number of read holders (observability only). *)
