(* Thread-safe instruments.  Every critical section runs under
   [locked], which uses Fun.protect so that an exception raised inside
   never leaves the mutex held (the bug the old Server.Metrics had). *)

let locked mutex f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

module Counter = struct
  type t = { mutable value : int; mutex : Mutex.t }

  let create () = { value = 0; mutex = Mutex.create () }

  let add t n =
    if n < 0 then invalid_arg "Counter.add: negative increment";
    locked t.mutex (fun () -> t.value <- t.value + n)

  let incr t = add t 1
  let value t = locked t.mutex (fun () -> t.value)
end

module Gauge = struct
  type t = { mutable value : int; mutex : Mutex.t }

  let create () = { value = 0; mutex = Mutex.create () }
  let set t n = locked t.mutex (fun () -> t.value <- n)
  let add t n = locked t.mutex (fun () -> t.value <- t.value + n)
  let value t = locked t.mutex (fun () -> t.value)
end

module Histogram = struct
  (* The 500_000 bound is the one missing from the original server
     histogram, which jumped from 250 ms straight to 1 s. *)
  let default_latency_bounds_us =
    [| 50; 100; 250; 500; 1_000; 2_500; 5_000; 10_000; 25_000; 50_000;
       100_000; 250_000; 500_000; 1_000_000; max_int |]

  type t = {
    bounds : int array;
    counts : int array;
    mutable sum : int;
    mutable count : int;
    mutex : Mutex.t;
  }

  let create ?(bounds = default_latency_bounds_us) () =
    if Array.length bounds = 0 then invalid_arg "Histogram.create: no bounds";
    Array.iteri
      (fun i b ->
        if i > 0 && b <= bounds.(i - 1) then
          invalid_arg "Histogram.create: bounds not strictly increasing")
      bounds;
    let bounds =
      if bounds.(Array.length bounds - 1) = max_int then Array.copy bounds
      else Array.append bounds [| max_int |]
    in
    { bounds;
      counts = Array.make (Array.length bounds) 0;
      sum = 0;
      count = 0;
      mutex = Mutex.create () }

  let bucket_of t v =
    let n = Array.length t.bounds in
    let rec find i = if i = n - 1 || v <= t.bounds.(i) then i else find (i + 1) in
    find 0

  let observe t v =
    locked t.mutex (fun () ->
        let i = bucket_of t v in
        t.counts.(i) <- t.counts.(i) + 1;
        t.sum <- t.sum + v;
        t.count <- t.count + 1)

  type snapshot = {
    bounds : int array;
    counts : int array;
    sum : int;
    count : int;
  }

  let snapshot t =
    locked t.mutex (fun () ->
        { bounds = Array.copy t.bounds;
          counts = Array.copy t.counts;
          sum = t.sum;
          count = t.count })
end

module Family = struct
  type 'a t = {
    labels : string list;
    make : unit -> 'a;
    table : (string list, 'a) Hashtbl.t;
    mutex : Mutex.t;
  }

  let create ~labels ~make =
    if labels = [] then invalid_arg "Family.create: empty label list";
    if List.length (List.sort_uniq compare labels) <> List.length labels then
      invalid_arg "Family.create: duplicate label names";
    { labels; make; table = Hashtbl.create 8; mutex = Mutex.create () }

  let label_names t = t.labels

  let labelled t values =
    locked t.mutex (fun () ->
        (* The arity check raises inside the critical section on
           purpose: it exercises the Fun.protect path, and keeping it
           under the lock makes the check-then-create atomic. *)
        if List.length values <> List.length t.labels then
          invalid_arg "Family.labelled: label value count mismatch";
        match Hashtbl.find_opt t.table values with
        | Some inst -> inst
        | None ->
            let inst = t.make () in
            Hashtbl.add t.table values inst;
            inst)

  let fold t ~init ~f =
    let entries =
      locked t.mutex (fun () ->
          Hashtbl.fold (fun values inst acc -> (values, inst) :: acc) t.table [])
    in
    let entries = List.sort (fun (a, _) (b, _) -> compare a b) entries in
    List.fold_left
      (fun acc (values, inst) -> f (List.combine t.labels values) inst acc)
      init entries
end
