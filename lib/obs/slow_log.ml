type entry = {
  statement : string;
  trace_id : string;
  total_us : int;
  spans : Trace.span list;
}

(* [seq] is a recency stamp used only as a tie-break in [slowest]. *)
type slot = { entry : entry; seq : int }

type t = {
  ring : slot option array;
  threshold_us : int;
  mutable next : int;  (* write cursor *)
  mutable seq : int;
  mutex : Mutex.t;
}

let create ?(capacity = 128) ?(threshold_us = 0) () =
  if capacity <= 0 then invalid_arg "Slow_log.create: capacity";
  { ring = Array.make capacity None; threshold_us; next = 0; seq = 0;
    mutex = Mutex.create () }

let threshold_us t = t.threshold_us

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let record t ~statement ~trace_id ~total_us ~spans =
  if total_us >= t.threshold_us then
    locked t (fun () ->
        t.ring.(t.next) <- Some { entry = { statement; trace_id; total_us; spans };
                                  seq = t.seq };
        t.next <- (t.next + 1) mod Array.length t.ring;
        t.seq <- t.seq + 1)

let slowest t n =
  let slots =
    locked t (fun () ->
        Array.fold_left
          (fun acc -> function Some s -> s :: acc | None -> acc)
          [] t.ring)
  in
  let sorted =
    List.sort
      (fun a b ->
        match compare b.entry.total_us a.entry.total_us with
        | 0 -> compare b.seq a.seq
        | c -> c)
      slots
  in
  List.filteri (fun i _ -> i < n) sorted |> List.map (fun s -> s.entry)
