(** Forward-looking expiration telemetry: the forecast of the database.

    Every tuple carries its expiration time, so the exact expiration
    load of the next Δ ticks is computable {e today} — no sampling, no
    estimation.  A horizon is that forecast in bucketed form: per table,
    how many live rows expire within the next 1, 2, 4, … ticks
    (log-spaced, Prometheus-histogram shaped, with a [+Inf] bucket
    holding the rows beyond the last finite bound or never expiring).

    This module is pure bucket arithmetic: the storage layer produces
    the counts (via binary-searched cuts over its expiration-ordered
    data, never a full scan), the server and coordinator assemble
    reports here.  Because buckets count disjoint row sets, horizons
    from disjoint shards merge by {e bucket-wise addition} and the merge
    is exact: merged ≡ single-node over the union of the data (a qcheck
    law in the test suite pins this).  Forecasts are exactly
    verifiable — the logical clock is deterministic, so the bucket for
    (now, now+Δ] equals the number of rows a subsequent [ADVANCE TO
    now+Δ] actually drops. *)

val default_bounds : int array
(** Log-spaced tick deltas, ascending, ending in [max_int] ([+Inf]). *)

val default_window : int
(** The Δ (ticks) used for fan-out forecasts and predictive storm
    rules: "what does the next ADVANCE window deliver?" *)

type table = {
  name : string;
  bounds : int array;
      (** ascending tick deltas; the last element is [max_int],
          rendered as [+Inf] *)
  counts : int array;
      (** per-bucket (non-cumulative): [counts.(i)] live rows expire in
          (now + bounds.(i-1), now + bounds.(i)]; the [+Inf] bucket also
          holds never-expiring rows.  Same length as [bounds]. *)
}

val live : table -> int
(** Total live rows — the sum of all buckets. *)

val expiring_within : table -> int -> int
(** [expiring_within tb d] is the cumulative count of live rows whose
    ticks-to-expiry is at most [d] (buckets whose bound ≤ [d]). *)

val merge_tables : table -> table -> table
(** Bucket-wise addition.
    @raise Invalid_argument on mismatched names or bounds. *)

val merge : table list list -> table list
(** Union of per-shard partials: tables matched by name, buckets added,
    result sorted by name.  Additive and exact — see the module header. *)

type report = {
  now : int;  (** the logical clock the forecast is anchored at *)
  window : int;  (** Δ for [fanout_events] and storm rules *)
  fanout_events : int;
      (** subscription events an [ADVANCE] to [now + window] delivers *)
  arrival_rate : float;  (** rows inserted per tick, sliding window *)
  expiration_rate : float;  (** rows expired per tick, sliding window *)
  tables : table list;  (** sorted by table name *)
}

val merge_reports : report list -> report
(** Cluster roll-up: clocks agree on [max] (shards advance together;
    a lagging shard under-forecasts conservatively), [window] on [max],
    counts, event forecasts and rates add.
    @raise Invalid_argument on an empty list. *)

val snapshot : table -> Instrument.Histogram.snapshot
(** The table's buckets as a histogram snapshot for exposition.
    [count] is the live-row total; [sum] is the upper-bound tick-mass
    Σ counts·bound over finite buckets (never-expiring rows contribute
    nothing). *)

val metrics : report -> Registry.metric list
(** The report as self-contained exposition metrics —
    [expirel_horizon_rows{table,le}] plus the fan-out forecast, window
    and churn gauges — renderable with {!Prometheus.render} without a
    registry.  The coordinator's merged-horizon page is exactly this. *)

val render : ?per_shard:(string * int) list -> report -> string
(** Human-readable multi-line text for [SHOW HORIZON] and the CLI.
    [per_shard] appends a live-row breakdown line per shard. *)

(** Arrival vs expiration velocity over a sliding window of logical
    time.  Feed it {e cumulative} totals (monotone counters) at
    observation points — scrapes, health checks — and it derives
    rows-per-tick rates from the oldest retained sample.  Logical time
    makes this deterministic: the same statement sequence yields the
    same rates. *)
module Churn : sig
  type t

  val create : ?window:int -> unit -> t
  (** [window] is in ticks (default 64): samples older than
      [now - window] are pruned, keeping one as the rate baseline. *)

  val observe : t -> now:int -> arrivals:int -> expirations:int -> unit
  (** Record cumulative totals at logical time [now].  A repeat
      observation at the same tick replaces the previous one. *)

  val rates : t -> float * float
  (** [(arrivals_per_tick, expirations_per_tick)] between the oldest
      retained sample and the newest; [(0., 0.)] until two samples at
      distinct ticks exist. *)
end
