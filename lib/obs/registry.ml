type sample =
  | Counter_sample of int
  | Gauge_sample of float
  | Histogram_sample of Instrument.Histogram.snapshot

type kind = Counter_kind | Gauge_kind | Histogram_kind

type metric = {
  name : string;
  help : string;
  kind : kind;
  scale : float;
  samples : ((string * string) list * sample) list;
}

(* What we store per registered name: enough to rebuild [metric] at
   collection time.  The sampler closures for stored instruments only
   touch the instrument's own mutex; [Polled] closures are arbitrary
   user code and are treated as hostile (run outside our mutex, guarded
   per-callback). *)
type source =
  | Stored of (unit -> ((string * string) list * sample) list)
  | Polled of (unit -> float)
  | Custom of (unit -> ((string * string) list * sample) list)

type entry = { e_name : string; e_help : string; e_kind : kind; e_scale : float;
               e_source : source }

type t = { mutable entries : entry list (* reverse registration order *);
           mutex : Mutex.t }

let create () = { entries = []; mutex = Mutex.create () }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let register t entry =
  locked t (fun () ->
      if List.exists (fun e -> e.e_name = entry.e_name) t.entries then
        invalid_arg ("Registry: duplicate metric name " ^ entry.e_name);
      t.entries <- entry :: t.entries)

let counter t ~name ~help =
  let c = Instrument.Counter.create () in
  register t
    { e_name = name; e_help = help; e_kind = Counter_kind; e_scale = 1.0;
      e_source =
        Stored (fun () -> [ ([], Counter_sample (Instrument.Counter.value c)) ]) };
  c

let gauge t ~name ~help =
  let g = Instrument.Gauge.create () in
  register t
    { e_name = name; e_help = help; e_kind = Gauge_kind; e_scale = 1.0;
      e_source =
        Stored
          (fun () ->
            [ ([], Gauge_sample (float_of_int (Instrument.Gauge.value g))) ]) };
  g

let gauge_fun t ~name ~help f =
  register t
    { e_name = name; e_help = help; e_kind = Gauge_kind; e_scale = 1.0;
      e_source = Polled f }

let custom t ?(scale = 1.0) ~name ~help ~kind sample =
  register t
    { e_name = name; e_help = help; e_kind = kind; e_scale = scale;
      e_source = Custom sample }

let histogram t ?(scale = 1.0) ?bounds ~name ~help () =
  let h = Instrument.Histogram.create ?bounds () in
  register t
    { e_name = name; e_help = help; e_kind = Histogram_kind; e_scale = scale;
      e_source =
        Stored
          (fun () -> [ ([], Histogram_sample (Instrument.Histogram.snapshot h)) ]) };
  h

let family_sampler fam sample_of =
  Stored
    (fun () ->
      Instrument.Family.fold fam ~init:[] ~f:(fun bindings inst acc ->
          (bindings, sample_of inst) :: acc)
      |> List.rev)

let counter_family t ~name ~help ~labels =
  let fam =
    Instrument.Family.create ~labels ~make:Instrument.Counter.create
  in
  register t
    { e_name = name; e_help = help; e_kind = Counter_kind; e_scale = 1.0;
      e_source =
        family_sampler fam (fun c -> Counter_sample (Instrument.Counter.value c)) };
  fam

let gauge_family t ~name ~help ~labels =
  let fam = Instrument.Family.create ~labels ~make:Instrument.Gauge.create in
  register t
    { e_name = name; e_help = help; e_kind = Gauge_kind; e_scale = 1.0;
      e_source =
        family_sampler fam (fun g ->
            Gauge_sample (float_of_int (Instrument.Gauge.value g))) };
  fam

let histogram_family t ?(scale = 1.0) ?bounds ~name ~help ~labels () =
  let fam =
    Instrument.Family.create ~labels ~make:(fun () ->
        Instrument.Histogram.create ?bounds ())
  in
  register t
    { e_name = name; e_help = help; e_kind = Histogram_kind; e_scale = scale;
      e_source =
        family_sampler fam (fun h ->
            Histogram_sample (Instrument.Histogram.snapshot h)) };
  fam

let collect t =
  (* Grab the entry list under the mutex, then run every sampler
     outside it: polled callbacks may take unrelated locks (the server's
     replication source takes server state locks), and a raising
     callback must not poison the registry or later collections. *)
  let entries = locked t (fun () -> List.rev t.entries) in
  List.map
    (fun e ->
      let samples =
        match e.e_source with
        | Stored sample -> sample ()
        | Polled f -> ( try [ ([], Gauge_sample (f ())) ] with _ -> [])
        | Custom sample -> ( try sample () with _ -> [])
      in
      { name = e.e_name; help = e.e_help; kind = e.e_kind; scale = e.e_scale;
        samples })
    entries
