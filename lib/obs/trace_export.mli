(** Chrome trace-event JSON export.

    Renders {!Trace_store.entry} lists in the Chrome trace-event format
    (the [{"traceEvents":[...]}] JSON consumed by [chrome://tracing],
    Perfetto and speedscope).  Each span becomes a complete (["X"])
    event whose [ts] is the trace's absolute origin
    ([Trace_store.entry.started_at], µs) plus the span's relative
    offset — so entries recorded on different nodes but sharing a trace
    id render on one aligned timeline.  Node names become processes
    (via [process_name] metadata events) and traces become threads;
    span ids, parent ids and labels ride in [args]. *)

val to_json : Trace_store.entry list -> string

val escape_string : string -> string
(** JSON string-body escaping: quotes, backslashes and control
    characters are escaped; all other bytes (including non-ASCII UTF-8)
    pass through. *)

exception Bad_escape of string

val unescape_string : string -> string
(** Inverse of {!escape_string}: [unescape_string (escape_string s) = s]
    for every [s].  Also accepts the standard ["\/"] escape.
    @raise Bad_escape on a malformed escape sequence *)
