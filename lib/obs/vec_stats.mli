(** Process-global counters for the vectorized executor.

    The executor calls {!record} once per batched-subtree execution
    (coarse-grained: one mutex acquisition per [Plan.Batched] boundary,
    never per batch or per row); the server exposes the totals as
    Prometheus gauges.  [cut_skipped] is the cut's saving — expired
    rows skipped by chunk-level texp pruning and binary-search cuts
    without a single per-row comparison. *)

type snapshot = {
  s_batches : int;  (** columnar batches produced *)
  s_rows : int;  (** rows that flowed through batched subtrees *)
  s_cut_skipped : int;
      (** expired rows skipped wholesale (chunk pruning + cut prefixes) *)
  s_rebatches : int;
      (** tuple-fallback results re-entered into batch form *)
}

val record :
  batches:int -> rows:int -> cut_skipped:int -> rebatches:int -> unit

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Tests only. *)
