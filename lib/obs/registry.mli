(** A named collection of instruments, the unit of exposition.

    A registry maps metric names to instruments (or labeled families of
    them, or polled gauge callbacks) together with the help text and
    unit scale that {!Prometheus.render} needs.  Registration is
    thread-safe; names must be unique.

    {!collect} snapshots every metric.  Polled gauge callbacks run
    {e outside} the registry mutex — they are expected to take their own
    locks (the server's replication source does), and holding ours
    across theirs would invert lock order.  A raising callback is
    skipped for that collection (its metric reports no samples) rather
    than failing the whole exposition; this is the deadlock-regression
    surface the tests hammer. *)

type t

val create : unit -> t

(** {1 Samples} *)

type sample =
  | Counter_sample of int
  | Gauge_sample of float
  | Histogram_sample of Instrument.Histogram.snapshot

type kind = Counter_kind | Gauge_kind | Histogram_kind

(** {1 Registration}

    All registration functions raise [Invalid_argument] when [name] is
    already registered. *)

val counter : t -> name:string -> help:string -> Instrument.Counter.t

val gauge : t -> name:string -> help:string -> Instrument.Gauge.t

val gauge_fun : t -> name:string -> help:string -> (unit -> float) -> unit
(** A gauge whose value is computed at collection time by the callback.
    The callback runs outside the registry mutex; if it raises, the
    metric is skipped for that collection. *)

val custom :
  t -> ?scale:float -> name:string -> help:string ->
  kind:kind -> (unit -> ((string * string) list * sample) list) -> unit
(** A fully polled metric: the callback produces the complete sample
    list (label bindings included) at collection time.  Same contract
    as {!gauge_fun} — runs outside the registry mutex, a raise skips
    the metric for that collection.  Use for label sets only known at
    poll time (per-view gauges). *)

val histogram :
  t -> ?scale:float -> ?bounds:int array -> name:string -> help:string ->
  unit -> Instrument.Histogram.t
(** [scale] (default [1.0]) multiplies observed integers at exposition —
    [~scale:1e-6] renders microsecond observations as Prometheus-base
    seconds. *)

val counter_family :
  t -> name:string -> help:string -> labels:string list ->
  Instrument.Counter.t Instrument.Family.t

val gauge_family :
  t -> name:string -> help:string -> labels:string list ->
  Instrument.Gauge.t Instrument.Family.t

val histogram_family :
  t -> ?scale:float -> ?bounds:int array -> name:string -> help:string ->
  labels:string list -> unit -> Instrument.Histogram.t Instrument.Family.t

(** {1 Collection} *)

type metric = {
  name : string;
  help : string;
  kind : kind;
  scale : float;  (** multiply integer samples by this at exposition *)
  samples : ((string * string) list * sample) list;
      (** one entry per label combination; [[]] labels for unlabeled
          instruments.  Empty when a polled callback raised. *)
}

val collect : t -> metric list
(** Metrics in registration order.  Safe to call concurrently with
    observations and registrations. *)
