type span = { name : string; start_us : int; duration_us : int }

type t = { t0 : float; mutable recorded : span list (* reverse order *) }

let now_us t = int_of_float ((Unix.gettimeofday () -. t.t0) *. 1e6)

let create () = { t0 = Unix.gettimeofday (); recorded = [] }

let record t ~name ~start_us ~duration_us =
  t.recorded <- { name; start_us; duration_us } :: t.recorded

let span trace name f =
  match trace with
  | None -> f ()
  | Some t ->
      let start_us = now_us t in
      Fun.protect
        ~finally:(fun () ->
          record t ~name ~start_us ~duration_us:(now_us t - start_us))
        f

let spans t = List.rev t.recorded
let elapsed_us t = now_us t
