type span = {
  id : int;
  parent : int option;
  name : string;
  start_us : int;
  duration_us : int;
  labels : (string * string) list;
}

(* An open span.  Labels accumulate in reverse; the frame is turned into
   a [span] when its [span] call returns. *)
type frame = {
  f_id : int;
  f_parent : int option;
  f_name : string;
  f_start_us : int;
  mutable f_labels : (string * string) list;
}

type t = {
  trace_id : string;
  root_parent : int option;
  t0 : float;
  mutable next_id : int;
  mutable open_frames : frame list;  (* innermost first *)
  mutable recorded : span list;  (* reverse order *)
}

let now_us t = int_of_float ((Unix.gettimeofday () -. t.t0) *. 1e6)

(* Process-wide counter folded into fresh trace ids so two traces
   created in the same microsecond still differ. *)
let id_counter = Atomic.make 0

let fresh_trace_id () =
  let us = Int64.of_float (Unix.gettimeofday () *. 1e6) in
  Printf.sprintf "%Lx-%x-%x" us (Unix.getpid ())
    (Atomic.fetch_and_add id_counter 1)

let create ?trace_id ?parent_span () =
  let trace_id =
    match trace_id with Some id -> id | None -> fresh_trace_id ()
  in
  { trace_id; root_parent = parent_span; t0 = Unix.gettimeofday ();
    next_id = 0; open_frames = []; recorded = [] }

let trace_id t = t.trace_id
let parent_span t = t.root_parent
let started_at t = t.t0

let current_parent t =
  match t.open_frames with
  | f :: _ -> Some f.f_id
  | [] -> t.root_parent

let record t ~name ~start_us ~duration_us =
  t.next_id <- t.next_id + 1;
  t.recorded <-
    { id = t.next_id; parent = current_parent t; name; start_us;
      duration_us; labels = [] }
    :: t.recorded

let span trace name f =
  match trace with
  | None -> f ()
  | Some t ->
      t.next_id <- t.next_id + 1;
      let frame =
        { f_id = t.next_id; f_parent = current_parent t; f_name = name;
          f_start_us = now_us t; f_labels = [] }
      in
      t.open_frames <- frame :: t.open_frames;
      Fun.protect
        ~finally:(fun () ->
          (match t.open_frames with
          | f :: rest when f == frame -> t.open_frames <- rest
          | frames ->
              (* Defensive: an ill-nested [record]/raise left stale
                 frames; drop everything down to and including ours. *)
              t.open_frames <-
                List.filter (fun f -> f != frame) frames);
          t.recorded <-
            { id = frame.f_id; parent = frame.f_parent;
              name = frame.f_name; start_us = frame.f_start_us;
              duration_us = now_us t - frame.f_start_us;
              labels = List.rev frame.f_labels }
            :: t.recorded)
        f

let label trace k v =
  match trace with
  | None -> ()
  | Some t -> (
      match t.open_frames with
      | [] -> ()
      | f :: _ -> f.f_labels <- (k, v) :: f.f_labels)

let spans t = List.rev t.recorded
let elapsed_us t = now_us t

let self_us all s =
  let children =
    List.fold_left
      (fun acc c ->
        if c.parent = Some s.id then acc + c.duration_us else acc)
      0 all
  in
  max 0 (s.duration_us - children)
