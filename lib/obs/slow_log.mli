(** Ring-buffer slow-query log.

    Keeps the last [capacity] requests whose total duration met the
    threshold, each with its statement text and span breakdown.
    {!slowest} answers the wire-level SLOWQ request: the [n] slowest
    recorded entries, slowest first.

    Thread-safe; recording is O(1), querying O(capacity log capacity). *)

type entry = {
  statement : string;
  trace_id : string;
      (** the id of the request's {!Trace}, so slow-log entries join
          against {!Trace_store} exports *)
  total_us : int;
  spans : Trace.span list;
}

type t

val create : ?capacity:int -> ?threshold_us:int -> unit -> t
(** [capacity] defaults to 128; [threshold_us] defaults to [0] (record
    everything — the ring then holds the most recent requests, and
    {!slowest} still ranks them). *)

val threshold_us : t -> int

val record :
  t -> statement:string -> trace_id:string -> total_us:int ->
  spans:Trace.span list -> unit
(** No-op when [total_us < threshold_us t]. *)

val slowest : t -> int -> entry list
(** [slowest t n]: up to [n] entries, slowest first; ties broken by
    recency (newer first). *)
