(** Declarative health rules over registry samples.

    A rule names a {!source} — a scalar derived from the current
    {!Registry.collect} output — and two thresholds.  {!evaluate} reads
    every rule against one collection and folds the results into a
    single ok / degraded / critical verdict plus the list of firing
    rules, which is what the server's [HEALTH] wire request returns.

    Semantics:
    - a [Metric] source reads the named metric, scaled by its registered
      exposition scale; when the metric has several label combinations
      the {e maximum} sample is used (worst case — a per-replica lag
      gauge should alarm on the laggiest replica).  Histogram samples
      read as their observation count.
    - a [Ratio] source divides two such readings and is unevaluable
      (skipped) while the denominator is zero or below [min_den] — a
      cold or barely-warmed cache fires no hit-ratio alarm; ratios over
      a handful of samples are noise, not evidence.
    - a [Hist_frac_above] source is the fraction of observations
      strictly above [bound] (in the instrument's raw integer unit,
      e.g. µs), pooled across label combinations; unevaluable until the
      histogram has observations.
    - a rule whose source is unevaluable (absent metric, raising polled
      provider, empty denominator) is skipped, never fired: health
      degrades on evidence, not on missing instrumentation.
    - [op] orients the comparison: [Above] fires when
      [value >= threshold] (lag, backlog, slow fraction), [Below] when
      [value <= threshold] (hit ratios).  [critical] wins over
      [degraded] when both breach. *)

type source =
  | Metric of string  (** a registry metric, by exposition name *)
  | Ratio of { num : string; den : string; min_den : float }
  | Hist_frac_above of { metric : string; bound : float }

type op = Above | Below

type rule = {
  name : string;
  source : source;
  op : op;
  degraded : float;
  critical : float;
  help : string;  (** one line shown when the rule fires *)
}

type level = Ok | Degraded | Critical

type firing = {
  rule_name : string;
  value : float;  (** the reading that breached *)
  level : level;
  help : string;
}

type report = { level : level; firing : firing list }

val evaluate : rule list -> Registry.metric list -> report

val level_to_string : level -> string
val level_of_string : string -> level option

val worst : level -> level -> level
(** [Critical > Degraded > Ok]. *)
