let default_bounds =
  [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 4096; 16384; max_int |]

let default_window = 16

type table = {
  name : string;
  bounds : int array;
  counts : int array;
}

let live tb = Array.fold_left ( + ) 0 tb.counts

let expiring_within tb d =
  let total = ref 0 in
  Array.iteri
    (fun i bound -> if bound <> max_int && bound <= d then total := !total + tb.counts.(i))
    tb.bounds;
  !total

let merge_tables a b =
  if a.name <> b.name then
    invalid_arg
      (Printf.sprintf "Horizon.merge_tables: %s vs %s" a.name b.name);
  if a.bounds <> b.bounds then
    invalid_arg ("Horizon.merge_tables: bucket bounds differ for " ^ a.name);
  { a with counts = Array.mapi (fun i c -> c + b.counts.(i)) a.counts }

let merge partials =
  let acc = Hashtbl.create 16 in
  List.iter
    (List.iter (fun tb ->
         match Hashtbl.find_opt acc tb.name with
         | None -> Hashtbl.replace acc tb.name tb
         | Some prev -> Hashtbl.replace acc tb.name (merge_tables prev tb)))
    partials;
  Hashtbl.fold (fun _ tb tbs -> tb :: tbs) acc []
  |> List.sort (fun a b -> String.compare a.name b.name)

type report = {
  now : int;
  window : int;
  fanout_events : int;
  arrival_rate : float;
  expiration_rate : float;
  tables : table list;
}

let merge_reports = function
  | [] -> invalid_arg "Horizon.merge_reports: empty"
  | first :: rest as all ->
    { now = List.fold_left (fun acc r -> max acc r.now) first.now rest;
      window = List.fold_left (fun acc r -> max acc r.window) first.window rest;
      fanout_events = List.fold_left (fun acc r -> acc + r.fanout_events) 0 all;
      arrival_rate = List.fold_left (fun acc r -> acc +. r.arrival_rate) 0. all;
      expiration_rate =
        List.fold_left (fun acc r -> acc +. r.expiration_rate) 0. all;
      tables = merge (List.map (fun r -> r.tables) all)
    }

let snapshot tb =
  let sum = ref 0 in
  Array.iteri
    (fun i bound -> if bound <> max_int then sum := !sum + (tb.counts.(i) * bound))
    tb.bounds;
  { Instrument.Histogram.bounds = tb.bounds;
    counts = tb.counts;
    sum = !sum;
    count = live tb
  }

let metrics r =
  [ { Registry.name = "expirel_horizon_rows";
      help =
        "Forecast: live rows by ticks-to-expiry, per table (+Inf also \
         holds never-expiring rows)";
      kind = Registry.Histogram_kind;
      scale = 1.0;
      samples =
        List.map
          (fun tb -> ([ ("table", tb.name) ], Registry.Histogram_sample (snapshot tb)))
          r.tables
    };
    { Registry.name = "expirel_horizon_fanout_events";
      help = "Subscription events the next ADVANCE window will deliver";
      kind = Registry.Gauge_kind;
      scale = 1.0;
      samples = [ ([], Registry.Gauge_sample (float_of_int r.fanout_events)) ]
    };
    { Registry.name = "expirel_horizon_window_ticks";
      help = "The forecast window (ticks) used for fan-out and storm rules";
      kind = Registry.Gauge_kind;
      scale = 1.0;
      samples = [ ([], Registry.Gauge_sample (float_of_int r.window)) ]
    };
    { Registry.name = "expirel_churn_rate";
      help = "Arrival vs expiration velocity, rows per tick over a \
              sliding window";
      kind = Registry.Gauge_kind;
      scale = 1.0;
      samples =
        [ ([ ("kind", "arrival") ], Registry.Gauge_sample r.arrival_rate);
          ([ ("kind", "expiration") ], Registry.Gauge_sample r.expiration_rate)
        ]
    }
  ]

let render ?(per_shard = []) r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "horizon now=%d window=%d fanout=%d arrival=%.2f/t expiration=%.2f/t\n"
       r.now r.window r.fanout_events r.arrival_rate r.expiration_rate);
  List.iter
    (fun (shard, rows) ->
      Buffer.add_string buf (Printf.sprintf "shard %s: live=%d\n" shard rows))
    per_shard;
  List.iter
    (fun tb ->
      Buffer.add_string buf
        (Printf.sprintf "table %s: live=%d soon=%d\n" tb.name (live tb)
           (expiring_within tb r.window));
      Array.iteri
        (fun i bound ->
          let le = if bound = max_int then "+Inf" else string_of_int bound in
          Buffer.add_string buf
            (Printf.sprintf "  le=%s rows=%d\n" le tb.counts.(i)))
        tb.bounds)
    r.tables;
  (* Line-oriented, no trailing newline: callers embed this in REPL
     replies and log lines that add their own terminator. *)
  let s = Buffer.contents buf in
  if String.length s > 0 && s.[String.length s - 1] = '\n' then
    String.sub s 0 (String.length s - 1)
  else s

module Churn = struct
  type sample = { tick : int; arrivals : int; expirations : int }

  type t = {
    window : int;
    mutable samples : sample list;  (* newest first; last is the baseline *)
  }

  let create ?(window = 64) () = { window; samples = [] }

  let observe t ~now ~arrivals ~expirations =
    let s = { tick = now; arrivals; expirations } in
    let samples =
      match t.samples with
      | newest :: rest when newest.tick = now -> s :: rest
      | l -> s :: l
    in
    (* Keep everything inside the window plus the first older sample:
       the rate denominator must span the whole window, not stop at its
       newest in-window edge. *)
    let rec prune = function
      | [] -> []
      | x :: rest when x.tick >= now - t.window -> x :: prune rest
      | x :: _ -> [ x ]
    in
    t.samples <- prune samples

  let rates t =
    match t.samples with
    | [] | [ _ ] -> (0., 0.)
    | newest :: rest ->
      let oldest = List.nth rest (List.length rest - 1) in
      let dt = newest.tick - oldest.tick in
      if dt <= 0 then (0., 0.)
      else
        ( float_of_int (newest.arrivals - oldest.arrivals) /. float_of_int dt,
          float_of_int (newest.expirations - oldest.expirations)
          /. float_of_int dt )
end
