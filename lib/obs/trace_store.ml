type entry = {
  node : string;
  trace_id : string;
  name : string;
  started_at : float;
  total_us : int;
  spans : Trace.span list;
}

type slot = { entry : entry; seq : int }

type t = {
  ring : slot option array;
  mutable next : int;  (* write cursor *)
  mutable seq : int;
  mutex : Mutex.t;
}

let create ?(capacity = 256) () =
  if capacity <= 0 then invalid_arg "Trace_store.create: capacity";
  { ring = Array.make capacity None; next = 0; seq = 0;
    mutex = Mutex.create () }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let record t entry =
  locked t (fun () ->
      t.ring.(t.next) <- Some { entry; seq = t.seq };
      t.next <- (t.next + 1) mod Array.length t.ring;
      t.seq <- t.seq + 1)

let finish t ~node ~name trace =
  record t
    { node; trace_id = Trace.trace_id trace; name;
      started_at = Trace.started_at trace;
      total_us = Trace.elapsed_us trace; spans = Trace.spans trace }

let recent t n =
  let slots =
    locked t (fun () ->
        Array.fold_left
          (fun acc -> function Some s -> s :: acc | None -> acc)
          [] t.ring)
  in
  let sorted =
    List.sort (fun (a : slot) (b : slot) -> compare b.seq a.seq) slots
  in
  List.filteri (fun i _ -> i < n) sorted |> List.map (fun s -> s.entry)

let by_trace_id t id =
  recent t max_int |> List.filter (fun e -> e.trace_id = id)
