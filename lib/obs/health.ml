type source =
  | Metric of string
  | Ratio of { num : string; den : string; min_den : float }
  | Hist_frac_above of { metric : string; bound : float }

type op = Above | Below

type rule = {
  name : string;
  source : source;
  op : op;
  degraded : float;
  critical : float;
  help : string;
}

type level = Ok | Degraded | Critical

type firing = { rule_name : string; value : float; level : level; help : string }

type report = { level : level; firing : firing list }

let level_to_string = function
  | Ok -> "ok"
  | Degraded -> "degraded"
  | Critical -> "critical"

let level_of_string = function
  | "ok" -> Some Ok
  | "degraded" -> Some Degraded
  | "critical" -> Some Critical
  | _ -> None

let level_rank = function Ok -> 0 | Degraded -> 1 | Critical -> 2

let worst a b = if level_rank a >= level_rank b then a else b

(* A metric's scalar reading, aggregated over its label combinations:
   the worst case (maximum) for point sources — a lag gauge per replica
   should alarm on the laggiest — and for histograms the total
   observation count.  [None] when the metric is absent or has no
   samples (e.g. a polled provider raised this scrape). *)
let metric_value metrics name =
  match
    List.find_opt (fun (m : Registry.metric) -> m.Registry.name = name)
      metrics
  with
  | None -> None
  | Some m ->
      let vals =
        List.filter_map
          (fun (_, s) ->
            match s with
            | Registry.Counter_sample n ->
                Some (float_of_int n *. m.Registry.scale)
            | Registry.Gauge_sample v -> Some (v *. m.Registry.scale)
            | Registry.Histogram_sample snap ->
                Some (float_of_int snap.Instrument.Histogram.count))
          m.Registry.samples
      in
      (match vals with
      | [] -> None
      | v :: rest -> Some (List.fold_left Float.max v rest))

(* Fraction of observations strictly above [bound] (in the instrument's
   raw integer unit), pooled over every label combination. *)
let hist_frac_above metrics name bound =
  match
    List.find_opt (fun (m : Registry.metric) -> m.Registry.name = name)
      metrics
  with
  | None -> None
  | Some m ->
      let total = ref 0 and above = ref 0 in
      List.iter
        (fun (_, s) ->
          match s with
          | Registry.Histogram_sample snap ->
              let open Instrument.Histogram in
              total := !total + snap.count;
              Array.iteri
                (fun i n ->
                  (* Every observation in bucket i is <= bounds.(i); it
                     is surely above [bound] when the previous bucket's
                     bound already exceeds it. *)
                  let lo =
                    if i = 0 then 0. else float_of_int snap.bounds.(i - 1)
                  in
                  if lo >= bound then above := !above + n)
                snap.counts
          | _ -> ())
        m.Registry.samples;
      if !total = 0 then None
      else Some (float_of_int !above /. float_of_int !total)

let source_value metrics = function
  | Metric name -> metric_value metrics name
  | Ratio { num; den; min_den } -> (
      match (metric_value metrics num, metric_value metrics den) with
      | Some n, Some d when d > 0. && d >= min_den -> Some (n /. d)
      | _ -> None)
  | Hist_frac_above { metric; bound } ->
      hist_frac_above metrics metric bound

let rule_level rule value =
  let breaches threshold =
    match rule.op with
    | Above -> value >= threshold
    | Below -> value <= threshold
  in
  if breaches rule.critical then Critical
  else if breaches rule.degraded then Degraded
  else Ok

let evaluate rules metrics =
  let firing =
    List.filter_map
      (fun rule ->
        match source_value metrics rule.source with
        | None -> None  (* unevaluable: absent metric or empty ratio *)
        | Some value -> (
            match rule_level rule value with
            | Ok -> None
            | level ->
                Some
                  { rule_name = rule.name; value; level;
                    help = rule.help }))
      rules
  in
  let level =
    List.fold_left (fun acc (f : firing) -> worst acc f.level) Ok firing
  in
  { level; firing }
