(** Prometheus text-format exposition (version 0.0.4).

    Renders a {!Registry.collect} result: [# HELP] / [# TYPE] comment
    pairs, one sample line per label combination, and for histograms the
    conventional cumulative [_bucket{le="…"}] series plus [_sum] and
    [_count], ending with an explicit [le="+Inf"] bucket.

    Integer instrument values are multiplied by the metric's registered
    scale ([1e-6] turns microsecond histograms into base-unit seconds,
    as the Prometheus naming conventions require); a [max_int] bound
    renders as [+Inf].  Label values are escaped per the spec
    (backslash, double quote, newline), help text likewise (backslash,
    newline). *)

val render : Registry.metric list -> string
(** The full exposition page, ending in a newline. *)
