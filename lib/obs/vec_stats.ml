(* Process-global counters for the vectorized executor, mirroring the
   sketch Observatory's shape: the executor records once per batched
   subtree (coarse — never per row or per batch), and the server's
   Prometheus registry polls the totals through gauge callbacks. *)

let lock = Mutex.create ()

type totals = {
  mutable batches : int;
  mutable rows : int;
  mutable cut_skipped : int;
  mutable rebatches : int;
}

let totals = { batches = 0; rows = 0; cut_skipped = 0; rebatches = 0 }

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let record ~batches ~rows ~cut_skipped ~rebatches =
  locked (fun () ->
      totals.batches <- totals.batches + batches;
      totals.rows <- totals.rows + rows;
      totals.cut_skipped <- totals.cut_skipped + cut_skipped;
      totals.rebatches <- totals.rebatches + rebatches)

type snapshot = {
  s_batches : int;
  s_rows : int;
  s_cut_skipped : int;
  s_rebatches : int;
}

let snapshot () =
  locked (fun () ->
      { s_batches = totals.batches;
        s_rows = totals.rows;
        s_cut_skipped = totals.cut_skipped;
        s_rebatches = totals.rebatches
      })

let reset () =
  locked (fun () ->
      totals.batches <- 0;
      totals.rows <- 0;
      totals.cut_skipped <- 0;
      totals.rebatches <- 0)
