let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Prometheus floats: integral values without a fractional part read
   better ("3" not "3."), everything else in shortest round-trip form. *)
let float_str v =
  if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let labels_str = function
  | [] -> ""
  | bindings ->
      let pairs =
        List.map
          (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
          bindings
      in
      "{" ^ String.concat "," pairs ^ "}"

let add_sample buf name bindings value =
  Buffer.add_string buf
    (Printf.sprintf "%s%s %s\n" name (labels_str bindings) (float_str value))

let add_histogram buf name bindings scale (s : Instrument.Histogram.snapshot) =
  let cumulative = ref 0 in
  Array.iteri
    (fun i bound ->
      cumulative := !cumulative + s.counts.(i);
      let le =
        if bound = max_int then "+Inf" else float_str (float_of_int bound *. scale)
      in
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket%s %d\n" name
           (labels_str (bindings @ [ ("le", le) ]))
           !cumulative))
    s.bounds;
  add_sample buf (name ^ "_sum") bindings (float_of_int s.sum *. scale);
  Buffer.add_string buf
    (Printf.sprintf "%s_count%s %d\n" name (labels_str bindings) s.count)

let render metrics =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (m : Registry.metric) ->
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s %s\n" m.name (escape_help m.help));
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" m.name
           (match m.kind with
           | Registry.Counter_kind -> "counter"
           | Registry.Gauge_kind -> "gauge"
           | Registry.Histogram_kind -> "histogram"));
      List.iter
        (fun (bindings, sample) ->
          match sample with
          | Registry.Counter_sample v ->
              add_sample buf m.name bindings (float_of_int v *. m.scale)
          | Registry.Gauge_sample v -> add_sample buf m.name bindings (v *. m.scale)
          | Registry.Histogram_sample s ->
              add_histogram buf m.name bindings m.scale s)
        m.samples)
    metrics;
  Buffer.contents buf
