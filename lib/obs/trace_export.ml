let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

exception Bad_escape of string

let unescape_string s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let hex i =
    if i + 3 >= n then raise (Bad_escape "truncated \\u escape");
    match int_of_string_opt ("0x" ^ String.sub s i 4) with
    | Some v when v <= 0xff -> Char.chr v
    | Some _ -> raise (Bad_escape "\\u escape above 0xff")
    | None -> raise (Bad_escape "malformed \\u escape")
  in
  let rec go i =
    if i < n then
      match s.[i] with
      | '\\' ->
          if i + 1 >= n then raise (Bad_escape "trailing backslash");
          (match s.[i + 1] with
          | '"' -> Buffer.add_char buf '"'; go (i + 2)
          | '\\' -> Buffer.add_char buf '\\'; go (i + 2)
          | '/' -> Buffer.add_char buf '/'; go (i + 2)
          | 'n' -> Buffer.add_char buf '\n'; go (i + 2)
          | 'r' -> Buffer.add_char buf '\r'; go (i + 2)
          | 't' -> Buffer.add_char buf '\t'; go (i + 2)
          | 'b' -> Buffer.add_char buf '\b'; go (i + 2)
          | 'f' -> Buffer.add_char buf '\012'; go (i + 2)
          | 'u' -> Buffer.add_char buf (hex (i + 2)); go (i + 6)
          | c -> raise (Bad_escape (Printf.sprintf "\\%c" c)))
      | c -> Buffer.add_char buf c; go (i + 1)
  in
  go 0;
  Buffer.contents buf

let str s = "\"" ^ escape_string s ^ "\""

(* Chrome's pid/tid fields are integers; derive stable small ids from
   the node name / trace id and name them with metadata events. *)
let stable_id s = Hashtbl.hash s land 0x3fffffff

let event ~name ~ph ~pid ~tid ?ts ?dur ?(args = []) () =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":%s,\"ph\":\"%s\",\"pid\":%d,\"tid\":%d"
       (str name) ph pid tid);
  (match ts with
  | Some ts -> Buffer.add_string buf (Printf.sprintf ",\"ts\":%.0f" ts)
  | None -> ());
  (match dur with
  | Some d -> Buffer.add_string buf (Printf.sprintf ",\"dur\":%d" d)
  | None -> ());
  if args <> [] then begin
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (str k);
        Buffer.add_char buf ':';
        Buffer.add_string buf v)
      args;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

let to_json entries =
  let events = ref [] in
  let push e = events := e :: !events in
  let nodes = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace_store.entry) ->
      let pid = stable_id e.node in
      let tid = stable_id e.trace_id in
      if not (Hashtbl.mem nodes e.node) then begin
        Hashtbl.add nodes e.node ();
        push
          (event ~name:"process_name" ~ph:"M" ~pid ~tid:0
             ~args:[ ("name", str e.node) ] ())
      end;
      (* One complete ("X") event per span, on the absolute timeline:
         the trace's origin plus the span's relative offset, so spans
         recorded on different nodes line up. *)
      let origin_us = e.started_at *. 1e6 in
      push
        (event ~name:e.name ~ph:"X" ~pid ~tid
           ~ts:origin_us ~dur:e.total_us
           ~args:[ ("trace_id", str e.trace_id) ] ());
      List.iter
        (fun (s : Trace.span) ->
          let args =
            [ ("trace_id", str e.trace_id);
              ("span_id", string_of_int s.id) ]
            @ (match s.parent with
              | Some p -> [ ("parent_id", string_of_int p) ]
              | None -> [])
            @ List.map (fun (k, v) -> (k, str v)) s.labels
          in
          push
            (event ~name:s.name ~ph:"X" ~pid ~tid
               ~ts:(origin_us +. float_of_int s.start_us)
               ~dur:s.duration_us ~args ()))
        e.spans)
    entries;
  "{\"traceEvents\":[" ^ String.concat "," (List.rev !events) ^ "]}"
