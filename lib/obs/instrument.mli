(** Thread-safe metric instruments: counters, gauges, histograms and
    labeled families of each.

    Every instrument guards its state with its own mutex, and every
    critical section runs under [Fun.protect] — an exception raised by
    user code (a label validation, a callback) can never leave a mutex
    locked, so one failing caller cannot deadlock every subsequent one.
    (The predecessor of this module, [Server.Metrics], had exactly that
    bug: its [locked] helper unlocked only on the success path.)

    Instruments hold integer values in a caller-chosen base unit
    (microseconds for latencies, bytes for sizes); scaling to the
    Prometheus-conventional base units happens at exposition time
    ({!Prometheus}). *)

module Counter : sig
  type t

  val create : unit -> t

  val incr : t -> unit

  val add : t -> int -> unit
  (** @raise Invalid_argument on a negative increment (counters are
      monotone) *)

  val value : t -> int
end

module Gauge : sig
  type t

  val create : unit -> t
  val set : t -> int -> unit
  val add : t -> int -> unit
  (** [add g n] shifts the gauge by [n] (negative allowed). *)

  val value : t -> int
end

module Histogram : sig
  type t

  val default_latency_bounds_us : int array
  (** Log-scale microsecond upper bounds,
      [50; 100; 250; 500; 1_000; …; 250_000; 500_000; 1_000_000], with a
      final [max_int] overflow bucket.  The 500 ms bound plugs the gap
      the original server histogram had between 250 ms and 1 s. *)

  val create : ?bounds:int array -> unit -> t
  (** [bounds] (default {!default_latency_bounds_us}) must be strictly
      increasing; a final [max_int] catch-all is appended when missing.
      @raise Invalid_argument on unsorted bounds *)

  val observe : t -> int -> unit
  (** Adds one observation (clamped into the first bucket whose bound it
      does not exceed). *)

  type snapshot = {
    bounds : int array;  (** upper bounds, ascending, last is [max_int] *)
    counts : int array;  (** per-bucket (non-cumulative) counts *)
    sum : int;  (** sum of every observed value *)
    count : int;  (** number of observations *)
  }

  val snapshot : t -> snapshot
  (** Atomic per-histogram: the bucket counts, sum and count are
      mutually consistent ([sum] and [count] cover exactly the
      observations in [counts]). *)
end

module Family : sig
  (** A labeled family: one instrument per label-value combination,
      created on first use.  ['a] is the instrument type. *)

  type 'a t

  val create : labels:string list -> make:(unit -> 'a) -> 'a t
  (** [labels] are the label {e names}; every lookup must supply exactly
      that many values.
      @raise Invalid_argument on an empty or duplicated label list *)

  val label_names : 'a t -> string list

  val labelled : 'a t -> string list -> 'a
  (** The instrument for the given label values, created if absent.
      @raise Invalid_argument when the number of values does not match
      the family's label names (the mutex is released on the way out —
      see the module preamble) *)

  val fold : 'a t -> init:'b -> f:((string * string) list -> 'a -> 'b -> 'b) -> 'b
  (** Folds over (label bindings, instrument) pairs, bindings in the
      declared label order, entries sorted by label values. *)
end
