(** Per-request trace spans.

    A trace is created when a request arrives and threaded (as a
    [t option]) down the query path; each stage wraps its work in
    {!span}.  Spans record wall-clock offsets relative to the trace's
    creation, in microseconds, so a recorded trace is self-contained —
    it can be shipped over the wire or parked in the slow-query log
    without reference to absolute time.

    Every trace carries a {e trace id}: an opaque string minted by the
    node that created it, or inherited from a remote caller via
    [?trace_id] so that a request fanning out over the wire (client →
    primary → replica) yields spans on every node sharing one id.  Each
    span additionally records its own id (unique within the trace) and
    the id of the span that encloses it, so exporters can rebuild the
    tree and compute self-time (duration minus direct children) instead
    of double-counting nested work.

    A trace belongs to one request on one worker thread; it is not
    synchronised.  Spans may nest (eval inside exec): each [span] call
    records its own entry, so a parent's duration includes its
    children's — use {!self_us} where exclusive time is wanted. *)

type span = {
  id : int;  (** unique within the trace, assigned in entry order *)
  parent : int option;
      (** id of the enclosing span, or the trace's [parent_span] (a
          remote caller's span id) for top-level spans *)
  name : string;  (** stage name, e.g. ["parse"], ["op:hash-join"] *)
  start_us : int;  (** offset from trace creation, µs *)
  duration_us : int;
  labels : (string * string) list;
      (** key/value annotations attached via {!label} while the span
          was open, e.g. [("rows", "42")] *)
}

type t

val create : ?trace_id:string -> ?parent_span:int -> unit -> t
(** Starts the clock.  [trace_id] (default: a fresh process-unique id)
    links this trace to a distributed request; [parent_span] is the
    remote caller's span id, recorded as the parent of this trace's
    top-level spans. *)

val trace_id : t -> string
val parent_span : t -> int option

val current_parent : t -> int option
(** The id of the innermost open span (or the trace's [parent_span]
    when none is open): what a remote call made right now should carry
    as its wire parent, so the remote node's spans nest under the call
    site. *)

val started_at : t -> float
(** Absolute creation time ([Unix.gettimeofday]), the origin that
    [start_us] offsets are relative to — lets exporters align spans
    from different nodes on one timeline. *)

val span : t option -> string -> (unit -> 'a) -> 'a
(** [span trace name f] runs [f], recording a [name] span on [trace]
    covering its execution — including when [f] raises ([Fun.protect]).
    [span None name f] is just [f ()]: callers thread [t option] and
    pay nothing when tracing is off. *)

val label : t option -> string -> string -> unit
(** [label trace k v] attaches [(k, v)] to the innermost open span.
    A no-op on [None] or when no span is open. *)

val record : t -> name:string -> start_us:int -> duration_us:int -> unit
(** Appends a span measured externally (e.g. lock wait timed by the
    caller); its parent is the currently open span, if any. *)

val spans : t -> span list
(** In recording order (children before the parent that encloses
    them, since the parent's [span] call returns last). *)

val elapsed_us : t -> int
(** Microseconds since [create]. *)

val self_us : span list -> span -> int
(** [self_us spans s] is [s]'s duration minus the total duration of its
    direct children in [spans] (clamped at 0): the time spent in the
    operator itself rather than in nested work. *)
