(** Per-request trace spans.

    A trace is created when a request arrives and threaded (as a
    [t option]) down the query path; each stage wraps its work in
    {!span}.  Spans record wall-clock offsets relative to the trace's
    creation, in microseconds, so a recorded trace is self-contained —
    it can be shipped over the wire or parked in the slow-query log
    without reference to absolute time.

    A trace belongs to one request on one worker thread; it is not
    synchronised.  Spans may nest (eval inside exec): each [span] call
    records its own entry, so a parent's duration includes its
    children's. *)

type span = {
  name : string;  (** stage name, e.g. ["parse"], ["op:join"] *)
  start_us : int;  (** offset from trace creation, µs *)
  duration_us : int;
}

type t

val create : unit -> t
(** Starts the clock. *)

val span : t option -> string -> (unit -> 'a) -> 'a
(** [span trace name f] runs [f], recording a [name] span on [trace]
    covering its execution — including when [f] raises ([Fun.protect]).
    [span None name f] is just [f ()]: callers thread [t option] and
    pay nothing when tracing is off. *)

val record : t -> name:string -> start_us:int -> duration_us:int -> unit
(** Appends a span measured externally (e.g. lock wait timed by the
    caller). *)

val spans : t -> span list
(** In recording order (children before the parent that encloses
    them, since the parent's [span] call returns last). *)

val elapsed_us : t -> int
(** Microseconds since [create]. *)
