(** A bounded ring of finished traces.

    The server parks every completed request trace here (newest
    overwrite oldest) so that [TRACE n] / [expirel_cli trace] can
    retrieve recent request trees after the fact, and so that traces
    from several nodes — each stamping its own [node] name — can be
    merged by trace id into one cross-node timeline
    ({!Trace_export.to_json}).  Thread-safe. *)

type entry = {
  node : string;  (** the recording node's name, e.g. ["primary"] *)
  trace_id : string;
  name : string;  (** what the trace covered, e.g. the statement text *)
  started_at : float;  (** [Trace.started_at]: absolute origin, s *)
  total_us : int;
  spans : Trace.span list;
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 256) most-recent traces are retained.
    @raise Invalid_argument when [capacity <= 0] *)

val record : t -> entry -> unit

val finish : t -> node:string -> name:string -> Trace.t -> unit
(** Snapshots a completed trace into the ring. *)

val recent : t -> int -> entry list
(** [recent t n]: up to [n] most recently recorded entries, newest
    first. *)

val by_trace_id : t -> string -> entry list
(** All retained entries sharing a trace id, newest first. *)
