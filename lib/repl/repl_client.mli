(** A read-routing client over a replicated deployment.

    Writes (and clock advances) go to the primary; reads fan out over
    the replicas round-robin.  An endpoint that fails is put aside and
    redialed under {!Backoff} — until then its turn falls through to the
    next replica, and with every replica down reads fall back to the
    primary, so a degraded fleet loses freshness head-room, not
    availability.

    Replica reads are {e expiration-exact}: each replica applies the
    primary's clock advances through its own storage, so a read never
    returns a tuple whose expiration time has passed on the primary's
    clock (the replica may lag — a tuple inserted on the primary may not
    be visible {e yet} — but never resurrects expired state). *)

open Expirel_server

type endpoint = Member.endpoint = {
  host : string;
  port : int;
}

type t

val create :
  ?backoff:(unit -> Backoff.t) ->
  primary:endpoint ->
  replicas:endpoint list ->
  unit ->
  t
(** No sockets are opened until first use; every endpoint is dialed
    lazily and redialed on failure.  [backoff] makes the per-endpoint
    retry policy (default {!Backoff.create}). *)

val exec : ?trace:Expirel_obs.Trace.t -> t -> string -> (Wire.response, string) result
(** One sqlx statement on the primary (writes, ADVANCE, anything).
    With [trace], the call is wrapped in a local [rpc:primary] span and
    ships the trace context, so the primary's spans for this statement
    record under the same trace id. *)

val query : ?trace:Expirel_obs.Trace.t -> t -> string -> (Wire.response, string) result
(** One read-only statement on the next available replica (round-robin,
    skipping endpoints in backoff), falling back to the primary when no
    replica answers.  With [trace], as {!exec}: a local
    [rpc:replica-<i>] span plus propagated context — the serving
    replica's spans join this trace's id. *)

val primary_stats : t -> (Wire.stats, string) result
val replica_stats : t -> (endpoint * (Wire.stats, string) result) list

val close : t -> unit
(** Closes every open connection.  Idempotent. *)
