(** A replica: a read-only expirel server plus an applier thread that
    follows a primary's log.

    The applier dials the primary, sends a [REPLICATE] handshake
    carrying its own durable position (persisted across restarts, so a
    killed replica resumes exactly where it stopped), and applies
    whatever comes back: a snapshot bootstrap when it is cold or fell
    behind the primary's retained tail, the record stream otherwise.
    Records land through the same clock discipline as a local [ADVANCE]
    — expirations fire at their exact logical times — so a read served
    by the replica never shows a tuple the primary's clock has already
    expired.

    On any failure (refused dial, dead socket, a receive quiet past the
    heartbeat window) the applier redials under {!Backoff}, resuming
    from its current position.  Lag is observable over the wire: the
    replica's [STATS] carries the replication section ({!Wire.repl_stats}
    with role [Replica]). *)

open Expirel_core
open Expirel_server

type t

val create :
  ?host:string ->
  ?port:int ->
  ?replica_id:string ->
  ?backoff:Backoff.t ->
  data_dir:string ->
  primary_host:string ->
  primary_port:int ->
  unit ->
  t
(** A replica serving [host]:[port] (default loopback, ephemeral) from
    its own durable directory.  [replica_id] (default derived from
    [data_dir]) names the session in the primary's follower registry. *)

val start : t -> unit
(** Starts the embedded server and the applier thread. *)

val stop : t -> unit
(** Stops the applier (waking it if blocked), then the server.
    Idempotent. *)

val port : t -> int
(** The read endpoint's bound port. *)

val server : t -> Server.t
(** The embedded read-only server. *)

val position : t -> int
(** Log records applied so far (the handshake cursor). *)

val source_position : t -> int
(** The primary's position as last heard (streams and heartbeats). *)

val lag_records : t -> int
(** [source_position - position], never negative. *)

val clock_lag : t -> int
(** Logical-time distance between the last heard primary clock and the
    local clock, in ticks. *)

val source_now : t -> Time.t
(** The primary's logical clock as last heard. *)

val reconnects : t -> int
val snapshots_received : t -> int
val records_applied : t -> int
val connected : t -> bool

val wait_for_position : ?timeout:float -> t -> int -> bool
(** Blocks (polling) until {!position} reaches the given position or
    [timeout] (default 5 s) elapses; [true] on success.  Test and
    tooling convenience. *)
