open Expirel_core
open Expirel_storage
open Expirel_server

(* A receive quieter than this is a dead primary (heartbeats come every
   0.25 s); Frame.recv raises Timeout through SO_RCVTIMEO and the
   applier redials. *)
let receive_timeout = 2.0

type t = {
  primary_host : string;
  primary_port : int;
  replica_id : string;
  backoff : Backoff.t;
  server : Server.t;
  store : Durable.t;
  mutex : Mutex.t;
  mutable source_position : int;
  mutable source_now : Time.t;
  mutable reconnects : int;
  mutable snapshots : int;
  mutable applied : int;
  mutable is_connected : bool;
  mutable sock : Unix.file_descr option;
  mutable running : bool;
  mutable applier : Thread.t option;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let position t = Durable.position t.store
let source_position t = locked t (fun () -> t.source_position)
let lag_records t = max 0 (source_position t - position t)
let source_now t = locked t (fun () -> t.source_now)

let clock_lag t =
  match source_now t, Durable.now t.store with
  | Time.Fin src, Time.Fin local -> max 0 (src - local)
  | (Time.Fin _ | Time.Inf), _ -> 0

let reconnects t = locked t (fun () -> t.reconnects)
let snapshots_received t = locked t (fun () -> t.snapshots)
let records_applied t = locked t (fun () -> t.applied)
let connected t = locked t (fun () -> t.is_connected)
let server t = t.server
let port t = Server.port t.server

let repl_stats t () =
  let position = position t in
  locked t (fun () ->
      Some
        { Wire.role = Wire.Replica;
          position;
          source_position = t.source_position;
          lag_records = max 0 (t.source_position - position);
          clock_lag =
            (match t.source_now, Durable.now t.store with
             | Time.Fin src, Time.Fin local -> max 0 (src - local)
             | (Time.Fin _ | Time.Inf), _ -> 0);
          reconnects = t.reconnects;
          snapshots = t.snapshots;
          records_shipped = t.applied;
          followers = 0
        })

let create ?(host = "127.0.0.1") ?(port = 0) ?replica_id ?backoff ~data_dir
    ~primary_host ~primary_port () =
  let replica_id =
    match replica_id with
    | Some id -> id
    | None -> Filename.basename data_dir
  in
  let server =
    Server.create
      ~config:
        { Server.default_config with
          host;
          port;
          data_dir = Some data_dir;
          read_only = true;
          node_name = replica_id
        }
      ()
  in
  let store =
    match Server.store server with
    | Some s -> s
    | None -> assert false  (* data_dir was set *)
  in
  let t =
    { primary_host;
      primary_port;
      replica_id;
      backoff = (match backoff with Some b -> b | None -> Backoff.create ());
      server;
      store;
      mutex = Mutex.create ();
      source_position = Durable.position store;
      source_now = Durable.now store;
      reconnects = 0;
      snapshots = 0;
      applied = 0;
      is_connected = false;
      sock = None;
      running = false;
      applier = None
    }
  in
  Metrics.set_repl_source (Server.metrics server) (repl_stats t);
  t

(* ---------- the applier ---------- *)

let dial t =
  let addr =
    let host =
      if t.primary_host = "localhost" then "127.0.0.1" else t.primary_host
    in
    Unix.ADDR_INET (Unix.inet_addr_of_string host, t.primary_port)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd addr;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO receive_timeout
     with Unix.Unix_error _ -> ());
    (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO receive_timeout
     with Unix.Unix_error _ -> ());
    fd
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

(* One connection's lifetime: handshake from the current durable
   position, then apply the stream until something breaks.  Exceptions
   (Frame.Closed / Timeout / Unix_error) are the caller's signal to
   redial. *)
let stream_once t fd =
  (* The handshake carries a trace context minted here, and the trace is
     parked in this replica's trace store: the primary records its
     initial shipment under the same id, so exporting both nodes'
     recent traces shows the join as one timeline. *)
  let tr = Expirel_obs.Trace.create () in
  let (_ : int) =
    Expirel_obs.Trace.span (Some tr) "repl:handshake" (fun () ->
        let ctx =
          Some
            { Wire.trace_id = Expirel_obs.Trace.trace_id tr;
              parent_span =
                Option.value ~default:0 (Expirel_obs.Trace.current_parent tr)
            }
        in
        Frame.send fd
          (Wire.encode_request
             (Wire.Replicate
                { replica_id = t.replica_id;
                  position = Durable.position t.store;
                  ctx
                })))
  in
  Expirel_obs.Trace_store.finish
    (Server.trace_store t.server)
    ~node:t.replica_id ~name:"replicate" tr;
  let ok = ref true in
  while !ok && t.running do
    let payload, _ = Frame.recv fd in
    match Wire.decode_response payload with
    | Ok (Wire.Repl_snapshot { position; records }) ->
      (match Server.install_snapshot t.server ~position records with
       | Ok () ->
         locked t (fun () ->
             t.snapshots <- t.snapshots + 1;
             t.source_position <- max t.source_position position;
             t.is_connected <- true);
         Backoff.reset t.backoff
       | Error _ -> ok := false)
    | Ok (Wire.Repl_records { from_position; records }) ->
      if from_position <> Durable.position t.store then
        (* Lost frames or a foreign history: redial and re-handshake
           from the position we actually hold. *)
        ok := false
      else begin
        match Server.apply_records t.server records with
        | Ok () ->
          locked t (fun () ->
              t.applied <- t.applied + List.length records;
              t.source_position <-
                max t.source_position (from_position + List.length records);
              t.is_connected <- true);
          Backoff.reset t.backoff
        | Error _ -> ok := false
      end
    | Ok (Wire.Repl_heartbeat { position; now }) ->
      locked t (fun () ->
          t.source_position <- max t.source_position position;
          t.source_now <- now;
          t.is_connected <- true);
      Backoff.reset t.backoff
    | Ok (Wire.Err _) | Ok _ | Error _ ->
      (* The peer is not streaming (old version, no store, garbage):
         drop the connection and retry under backoff. *)
      ok := false
  done

let applier_loop t =
  while t.running do
    (match dial t with
     | exception (Unix.Unix_error _ | Frame.Closed | Frame.Timeout) -> ()
     | fd ->
       locked t (fun () -> t.sock <- Some fd);
       (try stream_once t fd
        with Frame.Closed | Frame.Timeout | Frame.Oversized _
           | Unix.Unix_error _ -> ());
       locked t (fun () ->
           t.sock <- None;
           t.is_connected <- false);
       (try Unix.close fd with Unix.Unix_error _ -> ()));
    if t.running then begin
      locked t (fun () -> t.reconnects <- t.reconnects + 1);
      (* Sleep in slices so stop () is never stuck behind a long
         backoff. *)
      let delay = Backoff.next t.backoff in
      let slept = ref 0.0 in
      while t.running && !slept < delay do
        Thread.delay 0.02;
        slept := !slept +. 0.02
      done
    end
  done

let start t =
  if t.applier <> None then invalid_arg "Replica.start: already started";
  Server.start t.server;
  t.running <- true;
  t.applier <- Some (Thread.create applier_loop t)

let stop t =
  t.running <- false;
  locked t (fun () ->
      match t.sock with
      | Some fd ->
        (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      | None -> ());
  (match t.applier with
   | Some thread ->
     t.applier <- None;
     Thread.join thread
   | None -> ());
  Server.stop t.server

let wait_for_position ?(timeout = 5.0) t target =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if position t >= target then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()
