(** One remote expirel node as seen by a routing client: a lazily
    dialed connection with exponential-backoff redialing.

    Shared by {!Repl_client} (primary/replica routing) and the cluster
    coordinator (shard-map routing) — both care only that an endpoint
    is dialed on demand, put aside when it fails, and not hammered
    while it is down. *)

open Expirel_server

type endpoint = {
  host : string;
  port : int;
}

type t

val create : ?backoff:(unit -> Backoff.t) -> endpoint -> t
(** No socket is opened until first use.  [backoff] makes the retry
    policy (default {!Backoff.create}). *)

val endpoint : t -> endpoint

val connection : t -> Client.t option
(** The established connection, dialing if allowed; [None] while the
    endpoint is in backoff or refusing connections. *)

val drop : t -> unit
(** Closes the connection (if any) and schedules the next redial under
    backoff — call when a request-level failure shows the connection is
    unusable. *)

val on : t -> (Client.t -> ('a, string) result) -> ('a, string) result
(** [on m f] runs [f] over the member's connection; [Error] from [f]
    drops the connection (next call redials), an unavailable endpoint
    answers [Error "endpoint unavailable"] without blocking. *)

val traced_exec :
  ?trace:Expirel_obs.Trace.t ->
  Client.t ->
  span_name:string ->
  string ->
  (Wire.response, string) result
(** {!Client.exec_traced} wrapped in a local span named [span_name]:
    the remote spans and the local rpc span record under one trace. *)

val close : t -> unit
(** Closes without scheduling a redial.  Idempotent. *)
