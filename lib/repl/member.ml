open Expirel_server

type endpoint = {
  host : string;
  port : int;
}

type t = {
  endpoint : endpoint;
  backoff : Backoff.t;
  mutable conn : Client.t option;
  mutable retry_at : float;  (* no dialing before this *)
}

let create ?(backoff = fun () -> Backoff.create ()) endpoint =
  { endpoint; backoff = backoff (); conn = None; retry_at = 0.0 }

let endpoint m = m.endpoint

let drop m =
  (match m.conn with
   | Some c -> (try Client.close c with _ -> ())
   | None -> ());
  m.conn <- None;
  m.retry_at <- Unix.gettimeofday () +. Backoff.next m.backoff

(* An established connection, dialing if allowed; None while the
   endpoint is in backoff or refusing. *)
let connection m =
  match m.conn with
  | Some c -> Some c
  | None ->
    if Unix.gettimeofday () < m.retry_at then None
    else begin
      match
        Client.connect ~host:m.endpoint.host ~port:m.endpoint.port ()
      with
      | c ->
        m.conn <- Some c;
        Backoff.reset m.backoff;
        m.retry_at <- 0.0;
        Some c
      | exception Unix.Unix_error _ ->
        m.retry_at <- Unix.gettimeofday () +. Backoff.next m.backoff;
        None
    end

let on m f =
  match connection m with
  | None -> Error "endpoint unavailable"
  | Some c ->
    (match f c with
     | Ok _ as ok -> ok
     | Error _ as e ->
       (* Connection-level failure: the next call redials. *)
       drop m;
       e)

(* With [?trace], each remote call is wrapped in a local span and
   ships the trace context: the serving node's spans record under the
   same trace id, so merging this node's trace with the servers'
   recent traces yields one cross-node timeline. *)
let traced_exec ?trace c ~span_name sql =
  Expirel_obs.Trace.span trace span_name (fun () ->
      Client.exec_traced c ?trace sql)

let close m =
  match m.conn with
  | Some c ->
    (try Client.close c with _ -> ());
    m.conn <- None
  | None -> ()
