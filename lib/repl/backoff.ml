type t = {
  base : float;
  cap : float;
  rng : Random.State.t;
  mutable attempts : int;
}

let create ?(base = 0.05) ?(cap = 2.0) ?seed () =
  let rng =
    match seed with
    | Some n -> Random.State.make [| n |]
    | None -> Random.State.make_self_init ()
  in
  { base; cap; rng; attempts = 0 }

let next t =
  let span = Float.min t.cap (t.base *. (2.0 ** float_of_int t.attempts)) in
  t.attempts <- t.attempts + 1;
  (* Equal jitter: never less than half the span (no thundering retry),
     never more than the span (the cap means what it says). *)
  (span /. 2.0) +. Random.State.float t.rng (span /. 2.0)

let reset t = t.attempts <- 0
let attempt t = t.attempts
