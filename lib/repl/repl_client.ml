open Expirel_server

type endpoint = Member.endpoint = {
  host : string;
  port : int;
}

type t = {
  primary : Member.t;
  replicas : Member.t array;
  mutable next_replica : int;
}

let create ?backoff ~primary ~replicas () =
  { primary = Member.create ?backoff primary;
    replicas = Array.of_list (List.map (Member.create ?backoff) replicas);
    next_replica = 0
  }

let exec ?trace t sql =
  Member.on t.primary (fun c ->
      Member.traced_exec ?trace c ~span_name:"rpc:primary" sql)

let query ?trace t sql =
  let n = Array.length t.replicas in
  let rec try_from i tried =
    if tried >= n then
      Member.on t.primary (fun c ->
          Member.traced_exec ?trace c ~span_name:"rpc:primary" sql)
    else begin
      let m = t.replicas.(i mod n) in
      match
        Member.on m (fun c ->
            Member.traced_exec ?trace c
              ~span_name:(Printf.sprintf "rpc:replica-%d" (i mod n))
              sql)
      with
      | Ok _ as ok ->
        t.next_replica <- (i + 1) mod n;
        ok
      | Error _ -> try_from (i + 1) (tried + 1)
    end
  in
  if n = 0 then exec ?trace t sql else try_from t.next_replica 0

let primary_stats t = Member.on t.primary Client.stats

let replica_stats t =
  Array.to_list
    (Array.map
       (fun m -> (Member.endpoint m, Member.on m Client.stats))
       t.replicas)

let close t =
  Member.close t.primary;
  Array.iter Member.close t.replicas
