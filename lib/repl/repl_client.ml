open Expirel_server

type endpoint = {
  host : string;
  port : int;
}

type member = {
  endpoint : endpoint;
  backoff : Backoff.t;
  mutable conn : Client.t option;
  mutable retry_at : float;  (* no dialing before this *)
}

type t = {
  primary : member;
  replicas : member array;
  mutable next_replica : int;
}

let member backoff endpoint =
  { endpoint; backoff = backoff (); conn = None; retry_at = 0.0 }

let create ?(backoff = fun () -> Backoff.create ()) ~primary ~replicas () =
  { primary = member backoff primary;
    replicas = Array.of_list (List.map (member backoff) replicas);
    next_replica = 0
  }

let drop m =
  (match m.conn with
   | Some c -> (try Client.close c with _ -> ())
   | None -> ());
  m.conn <- None;
  m.retry_at <- Unix.gettimeofday () +. Backoff.next m.backoff

(* An established connection, dialing if allowed; None while the
   endpoint is in backoff or refusing. *)
let connection m =
  match m.conn with
  | Some c -> Some c
  | None ->
    if Unix.gettimeofday () < m.retry_at then None
    else begin
      match
        Client.connect ~host:m.endpoint.host ~port:m.endpoint.port ()
      with
      | c ->
        m.conn <- Some c;
        Backoff.reset m.backoff;
        m.retry_at <- 0.0;
        Some c
      | exception Unix.Unix_error _ ->
        m.retry_at <- Unix.gettimeofday () +. Backoff.next m.backoff;
        None
    end

let on_member m f =
  match connection m with
  | None -> Error "endpoint unavailable"
  | Some c ->
    (match f c with
     | Ok _ as ok -> ok
     | Error _ as e ->
       (* Connection-level failure: the next call redials. *)
       drop m;
       e)

(* With [?trace], each remote call is wrapped in a local span and
   ships the trace context: the serving node's spans record under the
   same trace id, so merging this node's trace with the servers'
   recent traces yields one cross-node timeline. *)
let traced_exec ?trace c ~span_name sql =
  Expirel_obs.Trace.span trace span_name (fun () ->
      Client.exec_traced c ?trace sql)

let exec ?trace t sql =
  on_member t.primary (fun c -> traced_exec ?trace c ~span_name:"rpc:primary" sql)

let query ?trace t sql =
  let n = Array.length t.replicas in
  let rec try_from i tried =
    if tried >= n then
      on_member t.primary (fun c ->
          traced_exec ?trace c ~span_name:"rpc:primary" sql)
    else begin
      let m = t.replicas.(i mod n) in
      match
        on_member m (fun c ->
            traced_exec ?trace c
              ~span_name:(Printf.sprintf "rpc:replica-%d" (i mod n))
              sql)
      with
      | Ok _ as ok ->
        t.next_replica <- (i + 1) mod n;
        ok
      | Error _ -> try_from (i + 1) (tried + 1)
    end
  in
  if n = 0 then exec ?trace t sql else try_from t.next_replica 0

let primary_stats t = on_member t.primary Client.stats

let replica_stats t =
  Array.to_list
    (Array.map (fun m -> (m.endpoint, on_member m Client.stats)) t.replicas)

let close t =
  let shut m =
    match m.conn with
    | Some c ->
      (try Client.close c with _ -> ());
      m.conn <- None
    | None -> ()
  in
  shut t.primary;
  Array.iter shut t.replicas
