(** Capped exponential backoff with jitter, for reconnect loops.

    Delays grow as [base * 2^attempt] up to [cap], and each is jittered
    (equal jitter: half the span deterministic, half uniform) so a fleet
    of replicas that lost the same primary does not redial in
    lock-step. *)

type t

val create : ?base:float -> ?cap:float -> ?seed:int -> unit -> t
(** [base] (default 0.05 s) is the first delay's span, [cap] (default
    2 s) the largest; [seed] fixes the jitter stream for tests. *)

val next : t -> float
(** The next delay in seconds, advancing the attempt counter. *)

val reset : t -> unit
(** Back to the first attempt — call after a connection proves
    healthy. *)

val attempt : t -> int
(** Consecutive failures so far (0 after {!reset}). *)
