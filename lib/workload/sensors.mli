(** Monitoring workload: "temperature or location samples" whose
    lifetime is known on insertion (Section 1) — each sensor reports
    every [period] ticks and a sample is current until the next report
    arrives, so [texp = sample time + period]. *)

open Expirel_core

type sample = {
  sensor : int;
  value : int;
  at : int;
}

val columns : string list
(** [\["sensor"; "value"\]]. *)

val stream :
  rng:Random.State.t ->
  sensors:int ->
  period:int ->
  horizon:int ->
  jitter:int ->
  sample list
(** Every sensor reports near each multiple of [period] (± uniform
    [jitter], clamped to the horizon), with a random-walk value.
    Sorted by [(at, sensor)]. *)

val iter :
  rng:Random.State.t ->
  sensors:int ->
  period:int ->
  horizon:int ->
  jitter:int ->
  (sample -> unit) ->
  unit
(** The same sample population as [stream] (identical given the same
    [rng] state), delivered to a callback without materialising the
    list — the generator for streams too large to hold.  Order is
    sensor-major (each sensor's timeline in full, sensors ascending),
    not [stream]'s global [(at, sensor)] sort. *)

val tuple_of : sample -> Tuple.t
val texp_of : period:int -> jitter:int -> sample -> Time.t
(** [at + period + jitter]: a sample survives until its replacement,
    with slack for the replacement's jitter. *)
