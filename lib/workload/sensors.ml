open Expirel_core

type sample = {
  sensor : int;
  value : int;
  at : int;
}

let columns = [ "sensor"; "value" ]

let stream ~rng ~sensors ~period ~horizon ~jitter =
  if sensors < 1 || period < 1 || horizon < 1 || jitter < 0 then
    invalid_arg "Sensors.stream: bad parameters";
  let samples = ref [] in
  for sensor = 1 to sensors do
    let value = ref (Random.State.int rng 100) in
    let t = ref 0 in
    while !t < horizon do
      let offset = if jitter = 0 then 0 else Random.State.int rng (jitter + 1) in
      let at = min (horizon - 1) (!t + offset) in
      samples := { sensor; value = !value; at } :: !samples;
      value := max 0 (!value + Random.State.int rng 11 - 5);
      t := !t + period
    done
  done;
  List.sort
    (fun a b ->
      match Int.compare a.at b.at with
      | 0 -> Int.compare a.sensor b.sensor
      | c -> c)
    !samples

let iter ~rng ~sensors ~period ~horizon ~jitter f =
  if sensors < 1 || period < 1 || horizon < 1 || jitter < 0 then
    invalid_arg "Sensors.iter: bad parameters";
  for sensor = 1 to sensors do
    let value = ref (Random.State.int rng 100) in
    let t = ref 0 in
    while !t < horizon do
      let offset = if jitter = 0 then 0 else Random.State.int rng (jitter + 1) in
      let at = min (horizon - 1) (!t + offset) in
      f { sensor; value = !value; at };
      value := max 0 (!value + Random.State.int rng 11 - 5);
      t := !t + period
    done
  done

let tuple_of { sensor; value; at = _ } = Tuple.ints [ sensor; value ]
let texp_of ~period ~jitter s = Time.of_int (s.at + period + jitter)
