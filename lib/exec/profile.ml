type node = {
  op : string;
  est_rows : int;
  mutable rows : int;
  mutable expired_dropped : int;
  mutable index_visited : int;
  mutable build_rows : int;
  mutable sketch_bytes : int;
  mutable batches : int;
  mutable cut_skipped : int;
  mutable time_us : int;
  children : node list;
}

let rec of_plan ~db plan =
  { op = Plan.operator_name plan;
    est_rows = Planner.estimate_rows db plan;
    rows = 0; expired_dropped = 0; index_visited = 0; build_rows = 0;
    sketch_bytes = 0;
    batches = 0; cut_skipped = 0;
    time_us = 0;
    children = List.map (of_plan ~db) (Plan.children plan) }

let rec total_expired_dropped n =
  List.fold_left
    (fun acc c -> acc + total_expired_dropped c)
    n.expired_dropped n.children

let rec total_cut_skipped n =
  List.fold_left
    (fun acc c -> acc + total_cut_skipped c)
    n.cut_skipped n.children

(* The annotation appended to each plan line.  Scan-only counters print
   only where they mean something: dropped on scans (the expiration
   churn), visited on index scans, build on hash joins, batch counts and
   chunk-pruning savings on vectorized operators. *)
let annotate n =
  let buf = Buffer.create 64 in
  Buffer.add_string buf
    (Printf.sprintf "(est=%d rows=%d" n.est_rows n.rows);
  if n.op = "seq-scan" || n.op = "index-scan" then
    Buffer.add_string buf (Printf.sprintf " dropped=%d" n.expired_dropped);
  if n.op = "index-scan" then
    Buffer.add_string buf (Printf.sprintf " visited=%d" n.index_visited);
  if n.op = "hash-join" then
    Buffer.add_string buf (Printf.sprintf " build=%d" n.build_rows);
  if n.op = "sketch-count" || n.op = "sketch-sample" then
    Buffer.add_string buf (Printf.sprintf " sketch=%dB" n.sketch_bytes);
  if n.batches > 0 then
    Buffer.add_string buf (Printf.sprintf " batches=%d" n.batches);
  if (n.op = "seq-scan" || n.op = "index-scan") && n.batches > 0 then
    Buffer.add_string buf (Printf.sprintf " cut_skipped=%d" n.cut_skipped);
  Buffer.add_string buf
    (Printf.sprintf " time=%.3fms)" (float_of_int n.time_us /. 1e3));
  Buffer.contents buf

let render plan node =
  let buf = Buffer.create 256 in
  let rec go depth in_batch p n =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    Buffer.add_string buf (Plan.describe p);
    Buffer.add_string buf "  ";
    Buffer.add_string buf (Plan.mode_tag ~in_batch p);
    Buffer.add_string buf "  ";
    Buffer.add_string buf (annotate n);
    Buffer.add_char buf '\n';
    List.iter2
      (go (depth + 1) (Plan.batch_mode ~in_batch p))
      (Plan.children p) n.children
  in
  go 0 false plan node;
  Buffer.contents buf
