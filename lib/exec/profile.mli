(** Per-operator execution profiles: the stats sink behind
    [EXPLAIN ANALYZE].

    A profile is a mutable tree mirroring a {!Plan.t} node for node
    (children in {!Plan.children} order).  {!of_plan} seeds each node
    with the planner's cardinality estimate; {!Executor.run}'s
    [?profile] argument fills in what actually happened — output rows,
    tuples the exp_tau liveness filter dropped (the expiration churn
    the paper reasons about per operator), index nodes visited, hash
    build sizes and per-operator wall time.  When no profile is passed
    the executor takes its original path and allocates nothing. *)

open Expirel_storage

type node = {
  op : string;  (** {!Plan.operator_name} of the mirrored plan node *)
  est_rows : int;  (** {!Planner.estimate_rows} at profile creation *)
  mutable rows : int;  (** actual output cardinality *)
  mutable expired_dropped : int;
      (** physical rows the scan's [tau] filter discarded (scans only) *)
  mutable index_visited : int;
      (** index nodes touched (index scans only) *)
  mutable build_rows : int;  (** hash-table build input (hash joins) *)
  mutable sketch_bytes : int;
      (** sketch memory footprint (sketch operators only) *)
  mutable batches : int;
      (** columnar batches this operator produced (batch mode only) *)
  mutable cut_skipped : int;
      (** expired rows a batch scan skipped {e without} per-row
          comparisons: wholly-expired chunks dropped via their max texp
          plus binary-search cut prefixes — the work the
          expiration-ordered layout saves over a per-tuple [tau]
          filter.  Also counted into [expired_dropped]. *)
  mutable time_us : int;
      (** inclusive wall time, µs — children included; subtract their
          [time_us] for self time *)
  children : node list;
}

val of_plan : db:Database.t -> Plan.t -> node
(** A zeroed profile tree for the plan, with estimates filled in. *)

val total_expired_dropped : node -> int
(** Sum of [expired_dropped] over the whole tree. *)

val total_cut_skipped : node -> int
(** Sum of [cut_skipped] over the whole tree — the rows chunk-level
    texp pruning saved this execution. *)

val annotate : node -> string
(** One node's stats, e.g.
    ["(est=100 rows=97 dropped=3 time=0.214ms)"]. *)

val render : Plan.t -> node -> string
(** The annotated plan tree: each {!Plan.describe} line followed by
    {!annotate} — the body of [EXPLAIN ANALYZE] output.
    @raise Invalid_argument when the trees' shapes disagree *)
