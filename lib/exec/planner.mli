(** The physical planner: compiles a logical {!Algebra.t} into an
    executable {!Plan.t} against a concrete database.

    Decisions made here, all cost-only (results are invariant):
    - selections directly over base relations become scans, with
      {!Access.plan} choosing point/range index paths where a secondary
      index serves a column-vs-constant conjunct;
    - join predicates are split by {!Predicate.equi_split}; when
      cross-side equality columns exist, {!Cost.join_choice} arbitrates
      hash-build/probe against the streaming nested loop on estimated
      input cardinalities;
    - union/intersection/difference run as linear merges over the sorted
      tuple order their inputs already carry;
    - everything else falls back to operators that mirror {!Ops}
      exactly.

    Plans are immutable and reusable: all data references go through the
    database at execution time, so a plan stays valid across updates and
    clock advances — only DDL (table or index changes, tracked by
    {!Database.generation}) warrants replanning, and even a stale plan
    stays {e correct} because the executor re-validates access paths. *)

open Expirel_core
open Expirel_storage

val plan : db:Database.t -> ?approx:Approx.spec -> Algebra.t -> Plan.compiled
(** [approx], when given, wraps the compiled physical tree in the
    matching sketch operator ({!Plan.Sketch_count} /
    {!Plan.Sketch_sample}); the logical expression stays the child's —
    the sketch is a physical-only answer transform. *)

val estimate_rows : Database.t -> Plan.t -> int
(** The cardinality estimate used to cost alternatives (table stats at
    the leaves, fixed selectivity factors above). *)
