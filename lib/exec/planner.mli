(** The physical planner: compiles a logical {!Algebra.t} into an
    executable {!Plan.t} against a concrete database.

    Decisions made here, all cost-only (results are invariant):
    - selections directly over base relations become scans, with
      {!Access.plan} choosing point/range index paths where a secondary
      index serves a column-vs-constant conjunct;
    - join predicates are split by {!Predicate.equi_split}; when
      cross-side equality columns exist, {!Cost.join_choice} arbitrates
      hash-build/probe against the streaming nested loop on estimated
      input cardinalities;
    - union/intersection/difference run as linear merges over the sorted
      tuple order their inputs already carry;
    - everything else falls back to operators that mirror {!Ops}
      exactly.

    Plans are immutable and reusable: all data references go through the
    database at execution time, so a plan stays valid across updates and
    clock advances — only DDL (table or index changes, tracked by
    {!Database.generation}) warrants replanning, and even a stale plan
    stays {e correct} because the executor re-validates access paths. *)

open Expirel_core
open Expirel_storage

val plan :
  db:Database.t -> ?approx:Approx.spec -> ?batch:bool -> Algebra.t ->
  Plan.compiled
(** [approx], when given, wraps the compiled physical tree in the
    matching sketch operator ({!Plan.Sketch_count} /
    {!Plan.Sketch_sample}); the logical expression stays the child's —
    the sketch is a physical-only answer transform.

    [batch] (default [true]) runs {!batchify} over the physical tree;
    [~batch:false] keeps the pure tuple-at-a-time plan — the baseline
    the vexec bench (and any kill switch) compares against. *)

val estimate_rows : Database.t -> Plan.t -> int
(** The cardinality estimate used to cost alternatives (table stats at
    the leaves, fixed selectivity factors above).  Scan estimates are
    {e live} cardinalities ({!Table.live_estimate}): a mostly-expired
    churny table costs by what survives the cut, not by its physical
    row count. *)

val batch_worthy : Plan.t -> bool
(** A vectorized kernel covers this subtree's spine down to a scan:
    scans; filters/projections over worthy inputs; hash joins with a
    worthy side. *)

val batchify : Plan.t -> Plan.t
(** Wrap every maximal batch-worthy subtree in a {!Plan.Batched}
    materialise boundary (bare unfiltered scans stay tuple-at-a-time:
    their cached-snapshot read is already O(1), except under a fused
    aggregate whose accumulation consumes batches directly).
    Results are invariant — the qcheck batch ≡ naive law pins it. *)
