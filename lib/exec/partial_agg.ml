open Expirel_core

(* Decomposed (partial) aggregation — the distributable form of the
   paper's agg^exp (Section 2.6.1).

   A partial condenses one relation fragment into per-group *expiration
   slices*: for every distinct finite expiration time one slice carrying
   the counts/sums/extrema of the members expiring exactly then, plus an
   immortal slice.  Slices merge componentwise across fragments (the
   hash partitions are disjoint, so counts add and sums combine), and
   every quantity the exact strategy needs — the value at tau, the
   change point nu (Equation (9)), the partition's complete-expiration
   time — is recomputable from the merged slices alone.  AVG never
   travels as an average: a slice ships the float sum and the non-null
   count, and the quotient is taken only at finalisation, which is what
   makes AVG combinable where bare per-fragment averages are not.

   The same machinery serves two callers: the executor's fused
   aggregate node (build one partial, finalise it — bit-identical to
   composing agg^exp with the having-selection and the projection), and
   the cluster coordinator (merge one partial per shard, finalise the
   union).  Single-node and distributed grouped queries therefore run
   the very same finalisation code. *)

type slice = {
  s_texp : Time.t;  (* the instant these members expire; [Inf] = never *)
  s_rows : int;  (* members in the slice *)
  s_nonnull : int;  (* members with a non-null aggregated attribute *)
  s_sum : Value.t;  (* SUM partial; [Null] when no non-null member *)
  s_fsum : float;  (* AVG numerator (non-numeric attrs contribute 0) *)
  s_min : Value.t;  (* MIN partial; [Null] when no non-null member *)
  s_max : Value.t;  (* MAX partial *)
}

type group = {
  key : Value.t list;  (* the GROUP BY attribute values *)
  slices : slice list;  (* ascending [s_texp], the immortal slice last *)
}

type t = group list

(* ---------- building a partial from one fragment ---------- *)

let empty_slice texp =
  { s_texp = texp;
    s_rows = 0;
    s_nonnull = 0;
    s_sum = Value.Null;
    s_fsum = 0.;
    s_min = Value.Null;
    s_max = Value.Null
  }

(* Componentwise accumulation.  The sum is null-aware ([Null] is the
   unit, mirroring how null attributes never contribute to agg^exp) and
   raises [Invalid_argument] on non-numeric operands exactly where
   [Aggregate.apply Sum] would. *)
let add_sum a b =
  match a, b with
  | Value.Null, v | v, Value.Null -> v
  | a, b -> Value.add a b

let pick keep a b =
  match a, b with
  | Value.Null, v | v, Value.Null -> v
  | a, b -> if keep (Value.compare b a) then b else a

let min_v = pick (fun c -> c < 0)
let max_v = pick (fun c -> c > 0)

let observe ~func slice value =
  let nonnull = not (Value.is_null value) in
  { slice with
    s_rows = slice.s_rows + 1;
    s_nonnull = (if nonnull then slice.s_nonnull + 1 else slice.s_nonnull);
    s_sum =
      (match func with
       | Aggregate.Sum _ when nonnull -> add_sum slice.s_sum value
       | _ -> slice.s_sum);
    s_fsum =
      (if nonnull then
         slice.s_fsum +. Option.value ~default:0. (Value.to_float value)
       else slice.s_fsum);
    s_min = (if nonnull then min_v slice.s_min value else slice.s_min);
    s_max = (if nonnull then max_v slice.s_max value else slice.s_max)
  }

module Key_map = Map.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

module Time_map = Map.Make (Time)

(* The accumulation form: slices keyed by group key then expiration
   time, fed one row at a time through an attribute accessor — so both
   materialised relations and columnar batches condense through the
   same code, without the batch path building tuples. *)
type acc = slice Time_map.t Key_map.t

let empty_acc : acc = Key_map.empty

let observe_acc ~group ~func ~attr ~texp acc =
  let value =
    match Aggregate.func_attr func with
    | Some i -> attr i
    | None -> Value.Null  (* COUNT aggregates no attribute *)
  in
  let key = List.map attr group in
  let slices = Option.value ~default:Time_map.empty (Key_map.find_opt key acc) in
  let slice =
    Option.value ~default:(empty_slice texp) (Time_map.find_opt texp slices)
  in
  Key_map.add key (Time_map.add texp (observe ~func slice value) slices) acc

let of_acc (acc : acc) =
  Key_map.fold
    (fun key slices groups ->
      (* Time_map.bindings is ascending, and [Inf] is the greatest time,
         so the immortal slice lands last by construction. *)
      { key; slices = List.map snd (Time_map.bindings slices) } :: groups)
    acc []
  |> List.rev

let of_relation ~group ~func relation =
  Relation.fold
    (fun t texp acc -> observe_acc ~group ~func ~attr:(Tuple.attr t) ~texp acc)
    relation empty_acc
  |> of_acc

(* ---------- merging partials (disjoint fragments) ---------- *)

let merge_slices a b =
  { s_texp = a.s_texp;
    s_rows = a.s_rows + b.s_rows;
    s_nonnull = a.s_nonnull + b.s_nonnull;
    s_sum = add_sum a.s_sum b.s_sum;
    s_fsum = a.s_fsum +. b.s_fsum;
    s_min = min_v a.s_min b.s_min;
    s_max = max_v a.s_max b.s_max
  }

let merge_slice_lists xs ys =
  let rec go xs ys =
    match xs, ys with
    | [], rest | rest, [] -> rest
    | x :: xs', y :: ys' ->
      let c = Time.compare x.s_texp y.s_texp in
      if c < 0 then x :: go xs' ys
      else if c > 0 then y :: go xs ys'
      else merge_slices x y :: go xs' ys'
  in
  go xs ys

let slices_map partial =
  List.fold_left
    (fun acc g ->
      Key_map.update g.key
        (function
          | None -> Some g.slices
          | Some slices -> Some (merge_slice_lists slices g.slices))
        acc)
    Key_map.empty partial

let merge a b =
  Key_map.fold
    (fun key slices acc -> { key; slices } :: acc)
    (slices_map (a @ b)) []
  |> List.rev

let merge_all = function
  | [] -> []
  | [ p ] -> p
  | p :: rest -> List.fold_left merge p rest

(* ---------- finalisation (the exact strategy) ---------- *)

(* The aggregate value over a set of slices — [apply f] recomputed from
   the condensed form. *)
let value_of ~func total =
  match (func : Aggregate.func) with
  | Aggregate.Count -> Value.Int total.s_rows
  | Aggregate.Sum _ -> total.s_sum
  | Aggregate.Min _ -> total.s_min
  | Aggregate.Max _ -> total.s_max
  | Aggregate.Avg _ ->
    if total.s_nonnull = 0 then Value.Null
    else Value.Float (total.s_fsum /. float_of_int total.s_nonnull)

(* Suffix totals: [suffix.(i)] condenses slices [i..]; the change-point
   scan walks them without re-folding per expiry. *)
let suffix_totals slices =
  List.fold_right
    (fun slice acc ->
      match acc with
      | [] -> [ slice ]
      | total :: _ -> merge_slices slice total :: acc)
    slices []

type finalized = {
  f_key : Value.t list;
  f_value : Value.t;
  f_nu : Time.t;  (* Equation (9)'s change point *)
  f_empties : Time.t;  (* when the whole partition has expired *)
}

(* Exactly [Aggregate.nu]: the first finite expiry at which the value
   over what remains differs from the value at tau (an emptied partition
   always counts as a change), [Inf] when the value never changes. *)
let finalize_group ~func { key; slices } =
  match suffix_totals slices with
  | [] -> None
  | total :: _ as suffixes ->
    if total.s_rows = 0 then None
    else begin
      let v0 = value_of ~func total in
      (* [suffixes.(i)] condenses what is still live after the expiry of
         slice [i-1]; the suffix after the *last* slice is empty, and an
         emptying partition always counts as a change. *)
      let rec change_point = function
        | [] -> Time.Inf
        | [ last ] ->
          if Time.is_infinite last.s_texp then Time.Inf else last.s_texp
        | slice :: (next :: _ as rest) ->
          if Time.is_infinite slice.s_texp then Time.Inf
          else if not (Value.equal v0 (value_of ~func next)) then slice.s_texp
          else change_point rest
      in
      let nu = change_point suffixes in
      let empties =
        match List.rev slices with
        | [] -> Time.Inf
        | last :: _ -> last.s_texp  (* ascending order: the max *)
      in
      Some { f_key = key; f_value = v0; f_nu = nu; f_empties = empties }
    end

(* A row's expiration under the exact strategy, derived from the slice
   form: agg^exp assigns each member row [min(nu, texp(member))]
   (Equation (9) capped by the member, see Ops.aggregate); collapsing
   the partition to one output row under the projection's union rule
   takes the max over members, i.e. [min(nu, empties)]. *)
let row_texp f = Time.min f.f_nu f.f_empties

(* The group's values at the positions the HAVING predicate and the
   projection may mention: a GROUP BY attribute (by its position in the
   child) or the aggregate at [child_arity + 1].  Positions outside that
   set have no single per-group value — the guard in the planner (and
   the SQL lowering rules) exclude them. *)
let position_value ~group ~child_arity f j =
  if j = child_arity + 1 then f.f_value
  else
    let rec find gs ks =
      match gs, ks with
      | g :: _, k :: _ when g = j -> k
      | _ :: gs', _ :: ks' -> find gs' ks'
      | _, _ -> Value.Null
    in
    find group f.f_key

let finalize ~group ~func ~child_arity ?having ~projection partial =
  let finalized = List.filter_map (finalize_group ~func) partial in
  (* The materialisation invalidates when some partition's rows vanish
     (at nu) while members outlive them — computed over *every*
     partition: the HAVING selection and the projection both preserve
     their child's texp(e). *)
  let invalidation =
    List.fold_left
      (fun acc f ->
        if Time.(f.f_nu < f.f_empties) then Time.min acc f.f_nu else acc)
      Time.Inf finalized
  in
  let kept =
    match having with
    | None -> finalized
    | Some p ->
      let full_arity = child_arity + 1 in
      List.filter
        (fun f ->
          let row =
            List.init full_arity (fun i ->
                position_value ~group ~child_arity f (i + 1))
          in
          Predicate.eval p (Tuple.of_list row))
        finalized
  in
  let relation =
    List.fold_left
      (fun acc f ->
        let tuple =
          Tuple.of_list
            (List.map (position_value ~group ~child_arity f) projection)
        in
        Relation.add tuple ~texp:(row_texp f) acc)
      (Relation.empty ~arity:(List.length projection))
      kept
  in
  (relation, invalidation)
