open Expirel_core
module Sketch = Expirel_sketch

type spec =
  | Count of { epsilon : float }
  | Sample of { k : int }

let name = function
  | Count { epsilon } -> Printf.sprintf "approx_count(%g)" epsilon
  | Sample { k } -> Printf.sprintf "sample(%d)" k

let columns spec ~child =
  match spec with
  | Count _ -> [ "approx_count"; "within" ]
  | Sample _ -> child

let build spec relation =
  match spec with
  | Count { epsilon } ->
    let c = Sketch.Counter.create ~epsilon in
    Relation.iter (fun _t texp -> Sketch.Counter.add c ~texp) relation;
    Sketch.Any.Counter c
  | Sample { k } ->
    let s = Sketch.Sample.create ~k () in
    Relation.iter
      (fun t texp -> Sketch.Sample.add s (Tuple.to_list t) ~texp)
      relation;
    Sketch.Any.Sample s

let result ~tau ~arity ~child_texp sketch =
  let rows, horizon = Sketch.Any.query_rows ~tau sketch in
  (* Rows keep their tuple-level texps (a sampled row outlives the
     answer's stability just like any projection row would); the
     expression-level texp(e) is capped by both the child's
     materialisation and the sketch's own horizon. *)
  let relation =
    List.fold_left
      (fun acc (vs, row_texp) ->
        Relation.add (Tuple.of_list vs) ~texp:row_texp acc)
      (Relation.empty ~arity) rows
  in
  { Eval.relation; texp = Time.min child_texp horizon }
