(** Physical plan execution.

    Produces exactly what {!Eval.run} produces for the corresponding
    logical expression — result tuples, their expiration times, and the
    expression-level [texp(e)] (Equations (1)–(11)) — while running the
    physical operators the planner chose: index scans, hash joins,
    streaming nested loops, linear set merges.  The qcheck
    plan-equivalence suite holds this module to [Relation.equal]
    (including texps) against the naive {!Ops} kernels. *)

open Expirel_core
open Expirel_storage

type probe = {
  probe : 'a. string -> rows:('a -> int) -> (unit -> 'a) -> 'a;
}
(** The operator span hook, polymorphic over the node's result so the
    same hook wraps materialised ({!Eval.result}) and vectorized (batch
    list) operators alike; [rows] extracts the output cardinality from
    whichever result the thunk produced — trace spans label rows
    without the hook knowing the representation. *)

val run :
  ?strategy:Aggregate.strategy ->
  ?probe:probe ->
  ?profile:Profile.node ->
  db:Database.t ->
  Plan.compiled ->
  Eval.result
(** Evaluates the plan against the database's current state and clock.
    [probe] wraps every physical operator node with its
    {!Plan.operator_name} — the hook observability layers use to emit
    per-operator [op:<name>] spans, exactly as {!Eval.run}'s probe does
    for logical names on the naive path.  Operators inside a
    {!Plan.Batched} subtree are spanned too, their row counts summed
    over batches.
    [profile] — a {!Profile.of_plan} tree for this plan's [physical] —
    accumulates per-operator rows, expired-drop counts, index visits,
    hash build sizes and wall time as the plan runs ([EXPLAIN
    ANALYZE]'s data).  When absent the executor takes its original
    code path: no counters, no allocation.
    @raise Errors.Unknown_relation / Errors.Arity_mismatch as
    {!Eval.run} would for the same logical expression. *)

(** {2 Physical kernels}

    Exposed for direct testing (hash collision and arity edges, merge
    behaviour) and for benchmarking against the naive kernels. *)

val nested_loop : Predicate.t -> Relation.t -> Relation.t -> Relation.t
(** Streaming select-over-product: [Ops.join p] without materialising
    the intermediate product. *)

val hash_join :
  pairs:(int * int) list ->
  pred:Predicate.t ->
  Relation.t -> Relation.t -> Relation.t
(** Build on the right, probe from the left.  [pairs] are equi-key
    columns (1-based in each input); [pred] is the full join predicate,
    re-verified on every candidate pair so bucket equality only ever
    accelerates.  Key normalisation follows {!Value.cmp}: Int/Float
    coerce to one numeric key space, Null keys join nothing, NaN keys
    fall back to a per-tuple loop. *)

val merge_union : Relation.t -> Relation.t -> Relation.t
val merge_intersect : Relation.t -> Relation.t -> Relation.t
val merge_diff : Relation.t -> Relation.t -> Relation.t
(** Linear merges over the sorted tuple order; duplicate survivors take
    [max] (union, Equation (4)) / [min] (intersection, Equation (6)) of
    the two expiration times, difference keeps the left side's. *)
