open Expirel_core
open Expirel_storage

let arity_env db name = Option.map Table.arity (Database.table db name)

(* Cheap cardinality estimates for costing physical alternatives: table
   stats at the leaves, fixed selectivity factors above them.  These only
   steer operator choice; they never affect results. *)
let rec estimate_rows db = function
  | Plan.Scan { name; pred; access } ->
    (match Database.table db name with
     | None -> 0
     | Some table ->
       (* Live rows, not physical ones: on a churny (lazily vacuumed)
          table the scan only ever emits what survives the binary-search
          cut at [tau], so costing by [physical_count] would overprice
          every path — and misprice index scans against full scans —
          by the expired fraction. *)
       let n = Table.live_estimate table ~tau:(Database.now db) in
       (match access, pred with
        | Access.Never_matches, _ -> 0
        | Access.Index_eq _, _ -> max 1 (n / 10)
        | Access.Index_range _, _ -> max 1 (n / 3)
        | Access.Full_scan, Some _ -> max 1 (n / 3)
        | Access.Full_scan, None -> n))
  | Plan.Filter (_, c) -> max 1 (estimate_rows db c / 3)
  | Plan.Project (_, c) -> estimate_rows db c
  | Plan.Nested_loop { pred; left; right } ->
    let pairs = estimate_rows db left * estimate_rows db right in
    (match pred with
     | Predicate.True -> pairs
     | _ -> max 1 (pairs / 3))
  | Plan.Hash_join { left; right; _ } ->
    max (estimate_rows db left) (estimate_rows db right)
  | Plan.Merge_union (l, r) -> estimate_rows db l + estimate_rows db r
  | Plan.Merge_intersect (l, r) ->
    min (estimate_rows db l) (estimate_rows db r)
  | Plan.Merge_diff (l, _) -> estimate_rows db l
  | Plan.Hash_aggregate { child; _ } -> estimate_rows db child
  | Plan.Grouped_aggregate { child; _ } -> estimate_rows db child
  | Plan.Sketch_count _ -> 1
  | Plan.Sketch_sample { k; _ } -> k
  | Plan.Batched c -> estimate_rows db c

let scan db name pred =
  let access =
    match Database.table db name, pred with
    | Some table, Some p -> Access.plan table p
    | Some _, None | None, _ -> Access.Full_scan
  in
  Plan.Scan { name; pred; access }

let join db p l pl pr =
  let equi =
    match Algebra.well_formed ~env:(arity_env db) l with
    | Ok left_arity -> Predicate.equi_split ~left_arity p
    | Error _ -> None
  in
  match equi with
  | Some { Predicate.pairs; residual = _ } ->
    let left = estimate_rows db pl and right = estimate_rows db pr in
    (match Cost.join_choice ~left ~right with
     | Cost.Hash -> Plan.Hash_join { pairs; pred = p; left = pl; right = pr }
     | Cost.Nested_loop -> Plan.Nested_loop { pred = p; left = pl; right = pr })
  | None -> Plan.Nested_loop { pred = p; left = pl; right = pr }

(* A projection (and optional HAVING selection) directly over an
   aggregate fuses into one Grouped_aggregate node — executed over
   expiration-slice partials (Partial_agg), the same condensed form the
   cluster coordinator merges across shards — provided both touch only
   GROUP BY positions and the aggregate at [child_arity + 1].  Other
   positions have no single per-group value, so those plans keep the
   unfused operator composition. *)
let fusible db ~projection ~having group child =
  match Algebra.well_formed ~env:(arity_env db) child with
  | Error _ -> false
  | Ok child_arity ->
    let allowed j = j = child_arity + 1 || List.mem j group in
    List.for_all allowed projection
    && (match having with
        | None -> true
        | Some p ->
          Option.is_some
            (Predicate.rename (fun c -> if allowed c then Some c else None) p))

let rec compile db = function
  | Algebra.Base name -> scan db name None
  | Algebra.Select (p, Algebra.Base name) -> scan db name (Some p)
  | Algebra.Select (p, e) -> Plan.Filter (p, compile db e)
  | Algebra.Project
      (js, Algebra.Select (h, Algebra.Aggregate (group, func, e)))
    when fusible db ~projection:js ~having:(Some h) group e ->
    Plan.Grouped_aggregate
      { group; func; having = Some h; projection = js; child = compile db e }
  | Algebra.Project (js, Algebra.Aggregate (group, func, e))
    when fusible db ~projection:js ~having:None group e ->
    Plan.Grouped_aggregate
      { group; func; having = None; projection = js; child = compile db e }
  | Algebra.Project (js, e) -> Plan.Project (js, compile db e)
  | Algebra.Product (l, r) ->
    Plan.Nested_loop
      { pred = Predicate.True; left = compile db l; right = compile db r }
  | Algebra.Join (p, l, r) -> join db p l (compile db l) (compile db r)
  | Algebra.Union (l, r) -> Plan.Merge_union (compile db l, compile db r)
  | Algebra.Intersect (l, r) ->
    Plan.Merge_intersect (compile db l, compile db r)
  | Algebra.Diff (l, r) -> Plan.Merge_diff (compile db l, compile db r)
  | Algebra.Aggregate (group, func, e) ->
    Plan.Hash_aggregate { group; func; child = compile db e }

(* ---------- the batching decision ---------- *)

(* A subtree is batch-worthy when a vectorized kernel covers its spine
   down to at least one scan leaf: scans always, filters and projections
   when their input is, a hash join when either side is.  Everything
   else executes tuple-at-a-time and would only be rebatched. *)
let rec batch_worthy = function
  | Plan.Scan _ -> true
  | Plan.Filter (_, c) | Plan.Project (_, c) -> batch_worthy c
  | Plan.Hash_join { left; right; _ } -> batch_worthy left || batch_worthy right
  | Plan.Nested_loop _ | Plan.Merge_union _ | Plan.Merge_intersect _
  | Plan.Merge_diff _ | Plan.Hash_aggregate _ | Plan.Grouped_aggregate _
  | Plan.Sketch_count _ | Plan.Sketch_sample _ | Plan.Batched _ ->
    false

(* One exception: a bare unfiltered scan.  Its tuple path is the
   generation-cached table snapshot — O(1) on repeated reads — which
   rebatching + rematerialising could only lose to.  Batching must pay
   somewhere: a cut, a vectorized predicate, a flat-array join. *)
let worth_wrapping = function
  | Plan.Scan { pred = None; _ } -> false
  | p -> batch_worthy p

(* Wrap every maximal batch-worthy subtree in a [Plan.Batched]
   materialise boundary.  [vec] rewrites the vectorized spine itself;
   children the batch kernels cannot consume ([batch_worthy] false) are
   re-batchified in tuple context, so a worthy island below a merge or
   an aggregate still gets its boundary. *)
let rec batchify p =
  if worth_wrapping p then Plan.Batched (vec p)
  else
    match p with
    | Plan.Scan _ -> p
    | Plan.Filter (q, c) -> Plan.Filter (q, batchify c)
    | Plan.Project (js, c) -> Plan.Project (js, batchify c)
    | Plan.Nested_loop { pred; left; right } ->
      Plan.Nested_loop { pred; left = batchify left; right = batchify right }
    | Plan.Hash_join { pairs; pred; left; right } ->
      Plan.Hash_join
        { pairs; pred; left = batchify left; right = batchify right }
    | Plan.Merge_union (l, r) -> Plan.Merge_union (batchify l, batchify r)
    | Plan.Merge_intersect (l, r) ->
      Plan.Merge_intersect (batchify l, batchify r)
    | Plan.Merge_diff (l, r) -> Plan.Merge_diff (batchify l, batchify r)
    | Plan.Hash_aggregate { group; func; child } ->
      Plan.Hash_aggregate { group; func; child = batchify child }
    | Plan.Grouped_aggregate { group; func; having; projection; child } ->
      (* The fused aggregate accumulates Partial_agg slices straight
         from its child's batches — nothing is rematerialised — so
         batching pays even for a bare unfiltered scan: wrap whenever a
         kernel covers the spine, [worth_wrapping]'s exception
         notwithstanding. *)
      let child =
        if batch_worthy child then Plan.Batched (vec child) else batchify child
      in
      Plan.Grouped_aggregate { group; func; having; projection; child }
    | Plan.Sketch_count { epsilon; child } ->
      Plan.Sketch_count { epsilon; child = batchify child }
    | Plan.Sketch_sample { k; child } ->
      Plan.Sketch_sample { k; child = batchify child }
    | Plan.Batched c -> Plan.Batched c

and vec p =
  match p with
  | Plan.Scan _ -> p
  | Plan.Filter (q, c) -> Plan.Filter (q, vec c)
  | Plan.Project (js, c) -> Plan.Project (js, vec c)
  | Plan.Hash_join { pairs; pred; left; right } ->
    let side c = if batch_worthy c then vec c else batchify c in
    Plan.Hash_join { pairs; pred; left = side left; right = side right }
  | p -> batchify p

let plan ~db ?approx ?(batch = true) expr =
  let physical = compile db expr in
  let physical = if batch then batchify physical else physical in
  let physical =
    match approx with
    | None -> physical
    | Some (Approx.Count { epsilon }) ->
      Plan.Sketch_count { epsilon; child = physical }
    | Some (Approx.Sample { k }) -> Plan.Sketch_sample { k; child = physical }
  in
  { Plan.logical = expr; physical }
