(** Physical query plans: the executable counterpart of {!Algebra.t}.

    A plan node says {e how} a logical operator runs — which access path
    a leaf uses, whether a join builds a hash table or loops, that a set
    operation merges its (already sorted) inputs — while remaining
    semantically identical to the naive operator kernels in {!Ops},
    including every expiration-time assignment (Equations (1)–(11)): the
    planner may only change cost, never results.  The qcheck
    plan-equivalence suite pins exactly that. *)

open Expirel_core
open Expirel_storage

type t =
  | Scan of {
      name : string;
      pred : Predicate.t option;
          (** pushed-down selection re-applied in full to candidates *)
      access : Access.plan;
          (** the access path chosen at plan time (for EXPLAIN); the
              executor re-validates it against the current indexes, so a
              cached plan can never return stale-index results *)
    }
  | Filter of Predicate.t * t
  | Project of int list * t
  | Nested_loop of {
      pred : Predicate.t;  (** [True] for a bare Cartesian product *)
      left : t;
      right : t;
    }  (** streaming select-over-product: O(|l|·|r|) time, O(out) space *)
  | Hash_join of {
      pairs : (int * int) list;
          (** equi-key columns, each 1-based in its own input *)
      pred : Predicate.t;
          (** the {e full} join predicate, re-verified per candidate pair
              — hashing only accelerates, equality semantics stay
              {!Value.cmp}'s *)
      left : t;
      right : t;
    }
  | Merge_union of t * t
  | Merge_intersect of t * t
  | Merge_diff of t * t
      (** linear merges over the sorted tuple order both inputs already
          have (relations are ordered maps) *)
  | Hash_aggregate of {
      group : int list;
      func : Aggregate.func;
      child : t;
    }
  | Grouped_aggregate of {
      group : int list;
      func : Aggregate.func;
      having : Predicate.t option;
      projection : int list;
      child : t;
    }
      (** the fused aggregate → HAVING → projection pipeline, executed
          over expiration-slice partials ({!Partial_agg}) — the same
          condensed form shards ship to the cluster coordinator.  Only
          planned when the projection and HAVING touch nothing but GROUP
          BY positions and the aggregate at [child_arity + 1] *)
  | Sketch_count of {
      epsilon : float;
      child : t;
    }
      (** [APPROX_COUNT(eps)]: folds the child into a bounded-memory
          expiration-axis counter and answers with an estimate and its
          error bound — the one physical operator with no logical
          counterpart whose {e results} differ from exact evaluation,
          by design and within an advertised [within] *)
  | Sketch_sample of {
      k : int;
      child : t;
    }
      (** [SAMPLE(k)]: a uniform sample of [k] live child rows from a
          priority sketch *)
  | Batched of t
      (** the materialise / rebatch boundary of a vectorized subtree:
          below it, scans / filters / projections / hash joins run over
          columnar {!Batch.t} chunks (live filtering at [tau] is a
          binary-search cut over texp-sorted chunks instead of a
          per-tuple predicate); operators not yet vectorized fall back
          to the tuple kernels and are rebatched.  The boundary itself
          materialises the surviving batches into a relation — unless
          the parent is a fused aggregate, which accumulates
          {!Partial_agg} slices straight from the batches *)

type compiled = {
  logical : Algebra.t;  (** kept for well-formedness checks and EXPLAIN *)
  physical : t;
}

val operator_name : t -> string
(** Canonical lower-case physical operator name ([seq-scan],
    [index-scan], [filter], [project], [nested-loop], [hash-join],
    [merge-union], [merge-intersect], [merge-diff], [aggregate],
    [sketch-count], [sketch-sample], [batch]) — the
    vocabulary EXPLAIN plan lines and per-operator [op:<name>] trace
    spans share, replacing the logical {!Algebra.operator_name}s on the
    physical execution path. *)

val vectorizable : t -> bool
(** Does the batch executor have a columnar kernel for this node when
    reached in batch context?  ([Scan], [Filter], [Project],
    [Hash_join], [Batched]; everything else falls back to the tuple
    kernels.) *)

val batch_mode : in_batch:bool -> t -> bool
(** Whether this node executes vectorized given the context it is
    reached in — mirrors the executor's dispatch, and doubles as the
    context its children see.  The root is reached with
    [in_batch:false]. *)

val mode_tag : in_batch:bool -> t -> string
(** ["[batch]"] or ["[tuple]"] per {!batch_mode} — the execution-mode
    annotation EXPLAIN and EXPLAIN ANALYZE print per operator. *)

val size : t -> int
(** Number of operator nodes. *)

val children : t -> t list
(** Direct sub-plans, left before right — the traversal order
    {!Profile.of_plan} mirrors. *)

val describe : t -> string
(** One node's un-indented {!pp} line (operator, access path, keys,
    predicates) without its children — lets annotated renderings
    (EXPLAIN ANALYZE) reuse the exact plan vocabulary. *)

val pp : Format.formatter -> t -> unit
(** Indented plan tree with access paths and join keys. *)

val to_string : t -> string
