(** Approximate-aggregate specifications and their sketch kernels.

    A [spec] is the physical-layer description of an approximate select
    item ([APPROX_COUNT(eps)] / [SAMPLE(k)]): the lowering layer
    attaches one to a compiled query, the planner wraps the physical
    tree in the matching sketch operator, and the executor calls
    {!build} / {!result} to fold the child relation into a
    bounded-memory sketch and render the sketch's answer as ordinary
    result rows with honest expiration times. *)

open Expirel_core

type spec =
  | Count of { epsilon : float }  (** [APPROX_COUNT(epsilon)] *)
  | Sample of { k : int }  (** [SAMPLE(k)] *)

val name : spec -> string
(** ["approx_count(0.05)"] / ["sample(10)"] — matches
    {!Expirel_sketch.Any.name} for the sketch {!build} produces, so
    observability gauges and plan lines share one vocabulary. *)

val columns : spec -> child:string list -> string list
(** Result column labels: [["approx_count"; "within"]] for a count,
    the child's own labels for a sample. *)

val build : spec -> Relation.t -> Expirel_sketch.Any.t
(** Folds every tuple of the relation (with its expiration time) into a
    fresh sketch of the spec's kind. *)

val result :
  tau:Time.t ->
  arity:int ->
  child_texp:Time.t ->
  Expirel_sketch.Any.t ->
  Eval.result
(** Renders the sketch's answer at [tau] as a result relation.  Rows
    keep their tuple-level texps; the expression-level [texp(e)] is
    capped by both the child's [texp(e)] and the sketch's own horizon —
    the earliest time the approximate answer can change. *)
