open Expirel_core
open Expirel_storage

type t =
  | Scan of {
      name : string;
      pred : Predicate.t option;
      access : Access.plan;
    }
  | Filter of Predicate.t * t
  | Project of int list * t
  | Nested_loop of {
      pred : Predicate.t;
      left : t;
      right : t;
    }
  | Hash_join of {
      pairs : (int * int) list;
      pred : Predicate.t;
      left : t;
      right : t;
    }
  | Merge_union of t * t
  | Merge_intersect of t * t
  | Merge_diff of t * t
  | Hash_aggregate of {
      group : int list;
      func : Aggregate.func;
      child : t;
    }
  | Grouped_aggregate of {
      (* The fused aggregate -> HAVING -> projection pipeline, executed
         over expiration-slice partials (Partial_agg) — the same
         condensed form shards ship to the cluster coordinator.  Only
         planned when the projection and the HAVING predicate touch
         nothing but GROUP BY positions and the aggregate. *)
      group : int list;
      func : Aggregate.func;
      having : Predicate.t option;
      projection : int list;
      child : t;
    }
  | Sketch_count of {
      epsilon : float;
      child : t;
    }
  | Sketch_sample of {
      k : int;
      child : t;
    }
  | Batched of t
      (* The materialise boundary of a vectorized subtree: everything
         below runs over columnar batches (scan / filter / project /
         hash-join kernels; other operators fall back to tuples and are
         rebatched), and the boundary itself turns the surviving
         batches back into a relation — unless a fused aggregate parent
         consumes the batches directly. *)

type compiled = {
  logical : Algebra.t;
  physical : t;
}

let operator_name = function
  | Scan { access = Access.Index_eq _ | Access.Index_range _; _ } ->
    "index-scan"
  | Scan { access = Access.Full_scan | Access.Never_matches; _ } -> "seq-scan"
  | Filter _ -> "filter"
  | Project _ -> "project"
  | Nested_loop _ -> "nested-loop"
  | Hash_join _ -> "hash-join"
  | Merge_union _ -> "merge-union"
  | Merge_intersect _ -> "merge-intersect"
  | Merge_diff _ -> "merge-diff"
  | Hash_aggregate _ | Grouped_aggregate _ -> "aggregate"
  | Sketch_count _ -> "sketch-count"
  | Sketch_sample _ -> "sketch-sample"
  | Batched _ -> "batch"

let rec size = function
  | Scan _ -> 1
  | Filter (_, c)
  | Project (_, c)
  | Hash_aggregate { child = c; _ }
  | Grouped_aggregate { child = c; _ }
  | Sketch_count { child = c; _ }
  | Sketch_sample { child = c; _ }
  | Batched c ->
    1 + size c
  | Nested_loop { left; right; _ }
  | Hash_join { left; right; _ }
  | Merge_union (left, right)
  | Merge_intersect (left, right)
  | Merge_diff (left, right) ->
    1 + size left + size right

let children = function
  | Scan _ -> []
  | Filter (_, c)
  | Project (_, c)
  | Hash_aggregate { child = c; _ }
  | Grouped_aggregate { child = c; _ }
  | Sketch_count { child = c; _ }
  | Sketch_sample { child = c; _ }
  | Batched c ->
    [ c ]
  | Nested_loop { left; right; _ }
  | Hash_join { left; right; _ }
  | Merge_union (left, right)
  | Merge_intersect (left, right)
  | Merge_diff (left, right) ->
    [ left; right ]

(* One node's un-indented line: the physical detail EXPLAIN surfaces —
   access paths at the leaves, equi-join key pairs, residual
   predicates. *)
let describe p =
  let positions js = String.concat "," (List.map string_of_int js) in
  let op = operator_name p in
  match p with
  | Scan { name; pred; access } ->
    (match pred with
     | None -> Printf.sprintf "%s %s" op name
     | Some q ->
       Printf.sprintf "%s %s via %s [%s]" op name
         (Format.asprintf "%a" Access.pp_plan access)
         (Predicate.to_string q))
  | Filter (q, _) -> Printf.sprintf "%s [%s]" op (Predicate.to_string q)
  | Project (js, _) -> Printf.sprintf "%s [%s]" op (positions js)
  | Nested_loop { pred; _ } ->
    (match pred with
     | Predicate.True -> Printf.sprintf "%s [product]" op
     | q -> Printf.sprintf "%s [%s]" op (Predicate.to_string q))
  | Hash_join { pairs; pred; _ } ->
    Printf.sprintf "%s [%s]%s" op
      (String.concat ", "
         (List.map (fun (l, r) -> Printf.sprintf "#%d = right #%d" l r) pairs))
      (match pred with
       | Predicate.True -> ""
       | q -> Printf.sprintf " verify [%s]" (Predicate.to_string q))
  | Merge_union _ | Merge_intersect _ | Merge_diff _ -> op
  | Hash_aggregate { group; func; _ } ->
    Printf.sprintf "%s [group {%s}, %s]" op (positions group)
      (Aggregate.func_to_string func)
  | Grouped_aggregate { group; func; having; projection; _ } ->
    Printf.sprintf "%s [group {%s}, %s%s, partials -> (%s)]" op
      (positions group)
      (Aggregate.func_to_string func)
      (match having with
       | None -> ""
       | Some p -> Printf.sprintf ", having [%s]" (Predicate.to_string p))
      (positions projection)
  | Sketch_count { epsilon; _ } -> Printf.sprintf "%s [eps=%g]" op epsilon
  | Sketch_sample { k; _ } -> Printf.sprintf "%s [k=%d]" op k
  | Batched _ -> Printf.sprintf "%s [materialise boundary]" op

(* Which nodes the batch executor vectorizes when reached in batch
   context.  Everything else inside a [Batched] subtree falls back to
   the tuple kernels and is rebatched. *)
let vectorizable = function
  | Scan _ | Filter _ | Project _ | Hash_join _ | Batched _ -> true
  | Nested_loop _ | Merge_union _ | Merge_intersect _ | Merge_diff _
  | Hash_aggregate _ | Grouped_aggregate _ | Sketch_count _ | Sketch_sample _
    ->
    false

(* Mirrors the executor's dispatch exactly: a [Batched] node (re)enters
   batch context; a vectorizable node keeps the context it was reached
   in; anything else executes tuple-at-a-time, and so do its children
   (until an inner [Batched]). *)
let batch_mode ~in_batch = function
  | Batched _ -> true
  | p -> in_batch && vectorizable p

let mode_tag ~in_batch p =
  if batch_mode ~in_batch p then "[batch]" else "[tuple]"

(* Indented plan tree in the style of Explain.expr_tree, each line
   tagged with its execution mode. *)
let pp ppf plan =
  let rec go depth in_batch p =
    Format.fprintf ppf "%s%s  %s@\n"
      (String.make (2 * depth) ' ')
      (describe p) (mode_tag ~in_batch p);
    List.iter (go (depth + 1) (batch_mode ~in_batch p)) (children p)
  in
  go 0 false plan

let to_string plan = Format.asprintf "%a" pp plan
