(** Columnar batches: the unit of work of the vectorized executor.

    A batch is one chunk of rows as flat column arrays plus a parallel
    expiration-time array and an optional selection vector.  Scans
    produce batches directly from a relation's memoised texp-sorted
    chunks ({!Relation.sorted_chunks}), where the live-at-[tau] cut is
    one binary search ({!cut_chunk}) and wholly-live / wholly-expired
    chunks are accepted / skipped without touching a row.  Filters
    narrow the selection vector; projections permute column pointers;
    only the materialise boundary ({!to_relation}) builds tuples again.

    Order contract: scan-leaf batches are texp-ascending (that is what
    makes the cut a binary search); batches above the scan, including
    {!of_relation} rebatches from the tuple-at-a-time fallback, carry
    no order guarantee — every operator above the scan only ever sees
    live rows, so nothing above needs one. *)

open Expirel_core

type t

val arity : t -> int

val length : t -> int
(** Selected rows (the batch may hold more, deselected ones). *)

val fold_rows : t -> init:'a -> f:('a -> (int -> Value.t) -> Time.t -> 'a) -> 'a
(** Folds over the selected rows; [f] receives a 1-based attribute
    accessor into the row and the row's expiration time.  How the fused
    aggregate accumulates {!Partial_agg} slices without materialising
    tuples. *)

val cut_chunk : arity:int -> tau:Time.t -> Relation.chunk -> t option * int
(** The live suffix of a texp-ascending chunk, and how many rows the
    cut skipped: [(None, len)] for a wholly-expired chunk, a zero-copy
    whole-chunk batch and [0] for a wholly-live one, and a
    suffix-selected batch for a straddling chunk — the binary-search
    cut. *)

val of_rows : arity:int -> (Tuple.t * Time.t) list -> t option
(** One batch holding exactly these rows ([None] when empty) — how
    index-scan candidate lists enter batch form. *)

val of_relation : Relation.t -> t list
(** Rebatch a materialised relation (tuple order) — the boundary where
    a tuple-at-a-time subtree feeds a vectorized parent. *)

val filter : ((int -> Value.t) -> bool) -> t -> t option
(** Apply a compiled predicate kernel ({!Predicate.compile}), narrowing
    the selection vector; the columns are shared.  [None] when no row
    passes. *)

val project : int list -> t -> t
(** Permutes / duplicates column pointers (1-based), zero-copy.
    Coinciding output rows are deliberately {e not} merged here: the
    projection rule's max-merge happens at {!to_relation}, with which
    every vectorised operator commutes. *)

val to_relation : arity:int -> t list -> Relation.t
(** The materialise boundary: rows become tuples again, coinciding
    tuples max-merge their expiration times (the same
    {!Relation.add} rule the tuple-at-a-time kernels use). *)

(** Accumulates operator output rows (joins, rebatches) into full
    batches, flushing every {!Relation.chunk_rows} rows. *)
module Builder : sig
  type batch = t
  type t

  val create : arity:int -> t

  val add : t -> (int -> Value.t) -> Time.t -> unit
  (** Append one row from a 1-based attribute source. *)

  val to_batches : t -> batch list
  (** Flush and return everything appended, in append order.  The
      builder must not be reused afterwards. *)
end
