open Expirel_core
open Expirel_storage

(* ---------- physical join kernels ---------- *)

(* Streaming select-over-product: same pairs, predicate and texp rule as
   [Ops.join p = select p (product l r)] (Equations (2) and (5)), but
   without materialising the product — O(|l|·|r|) time, O(out) space. *)
let nested_loop pred left right =
  let arity = Relation.arity left + Relation.arity right in
  Relation.fold
    (fun l e_l acc ->
      Relation.fold
        (fun r e_r acc ->
          let t = Tuple.concat l r in
          if Predicate.eval pred t then
            Relation.add t ~texp:(Time.min e_l e_r) acc
          else acc)
        right acc)
    left
    (Relation.empty ~arity)

(* Hash-join key normalisation.  Bucket equality must refine the
   predicate's equality ([Value.cmp]): values cmp considers equal must
   land in the same bucket (misses lose result rows), while collisions
   are harmless because the full predicate is re-verified per candidate.
   cmp coerces Int-vs-Float numerically, so both map to Float keys; Null
   compares equal to nothing (itself included), so Null-keyed tuples
   cannot satisfy an equality conjunct and are dropped outright.  NaN is
   the one value where structural hashing diverges the other way (cmp
   says NaN = NaN, generic equality says otherwise): those rare tuples
   take a per-tuple nested-loop fallback instead. *)
type key_class =
  | Key of Value.t list
  | Dead  (* a Null key attribute: no equality conjunct can hold *)
  | Fallback  (* a NaN key attribute: hashing would miss cmp-equal pairs *)

(* [get] is a 1-based attribute accessor — a tuple's [Tuple.attr] on the
   streaming path, a batch row's column accessor on the vectorized one,
   so both paths share one normalisation. *)
let key_of_cols get cols =
  let rec go acc = function
    | [] -> Key (List.rev acc)
    | c :: rest ->
      (match get c with
       | Value.Null -> Dead
       | Value.Int n -> go (Value.Float (float_of_int n) :: acc) rest
       | Value.Float f when Float.is_nan f -> Fallback
       | v -> go (v :: acc) rest)
  in
  go [] cols

let key_of tuple cols = key_of_cols (Tuple.attr tuple) cols

let hash_join ~pairs ~pred left right =
  let arity = Relation.arity left + Relation.arity right in
  let left_cols = List.map fst pairs and right_cols = List.map snd pairs in
  let table = Hashtbl.create (max 16 (2 * Relation.cardinal right)) in
  Relation.iter
    (fun s e_s ->
      match key_of s right_cols with
      | Key k -> Hashtbl.add table k (s, e_s)
      | Dead | Fallback -> ())
    right;
  let emit l e_l acc (s, e_s) =
    let t = Tuple.concat l s in
    if Predicate.eval pred t then Relation.add t ~texp:(Time.min e_l e_s) acc
    else acc
  in
  Relation.fold
    (fun l e_l acc ->
      match key_of l left_cols with
      | Dead -> acc
      | Key k -> List.fold_left (emit l e_l) acc (Hashtbl.find_all table k)
      | Fallback ->
        Relation.fold (fun s e_s acc -> emit l e_l acc (s, e_s)) right acc)
    left
    (Relation.empty ~arity)

(* ---------- merge kernels ---------- *)

(* Relations are ordered maps, so [to_list] is sorted by [Tuple.compare]
   with distinct keys: set operations become one linear merge instead of
   per-tuple searches of the other side. *)
let merge ~left_only ~right_only ~both left right =
  let arity = Relation.arity left in
  let rec go xs ys acc =
    match xs, ys with
    | [], ys -> List.fold_left (fun acc (t, e) -> right_only t e acc) acc ys
    | xs, [] -> List.fold_left (fun acc (t, e) -> left_only t e acc) acc xs
    | ((tx, ex) :: xs' as xs), ((ty, ey) :: ys' as ys) ->
      let c = Tuple.compare tx ty in
      if c < 0 then go xs' ys (left_only tx ex acc)
      else if c > 0 then go xs ys' (right_only ty ey acc)
      else go xs' ys' (both tx ex ey acc)
  in
  go (Relation.to_list left) (Relation.to_list right)
    (Relation.empty ~arity)

let keep t e acc = Relation.add t ~texp:e acc
let skip _ _ acc = acc

let merge_union =
  merge ~left_only:keep ~right_only:keep ~both:(fun t e_l e_r acc ->
      Relation.add t ~texp:(Time.max e_l e_r) acc)

let merge_intersect =
  merge ~left_only:skip ~right_only:skip ~both:(fun t e_l e_r acc ->
      Relation.add t ~texp:(Time.min e_l e_r) acc)

let merge_diff =
  merge ~left_only:keep ~right_only:skip ~both:(fun _ _ _ acc -> acc)

(* ---------- the vectorized kernels ---------- *)

(* Hash join over batches: same key classes, same [Value.cmp]-refining
   normalisation and same full-predicate re-verification as
   [hash_join], but the build and probe loops run over flat column
   arrays and the output accumulates into column buffers instead of a
   tuple map.  Coinciding output rows (possible only below a vectorized
   projection) merge at the materialise boundary, with which every
   kernel here commutes. *)
let batch_hash_join ~pairs ~pred ~left_arity ~right_arity lbs rbs =
  let kernel = Predicate.compile pred in
  let left_cols = List.map fst pairs and right_cols = List.map snd pairs in
  let table = Hashtbl.create 64 in
  (* NaN-keyed probes fall back to scanning every build row, exactly
     like the streaming kernel's per-tuple nested loop over [right]. *)
  let all_rights = ref [] in
  List.iter
    (fun b ->
      Batch.fold_rows b ~init:() ~f:(fun () get texp ->
          let row = Array.init right_arity (fun j -> get (j + 1)) in
          all_rights := (row, texp) :: !all_rights;
          match key_of_cols get right_cols with
          | Key k -> Hashtbl.add table k (row, texp)
          | Dead | Fallback -> ()))
    rbs;
  let out = Batch.Builder.create ~arity:(left_arity + right_arity) in
  let emit lget e_l (row, e_s) =
    let get j = if j <= left_arity then lget j else row.(j - left_arity - 1) in
    if kernel get then Batch.Builder.add out get (Time.min e_l e_s)
  in
  List.iter
    (fun b ->
      Batch.fold_rows b ~init:() ~f:(fun () lget e_l ->
          match key_of_cols lget left_cols with
          | Dead -> ()
          | Key k -> List.iter (emit lget e_l) (Hashtbl.find_all table k)
          | Fallback -> List.iter (emit lget e_l) !all_rights))
    lbs;
  Batch.Builder.to_batches out

(* Can the vectorized pipeline rooted here emit the same value-row
   twice?  Only a vectorized projection can alias rows (its max-merge
   is deferred to the materialise boundary); scans are sets, filters
   preserve distinctness, joins of distinct sides concatenate
   injectively, and anything the batch executor runs as a tuple
   fallback arrives as an (already deduplicated) relation.  When this
   holds, the fused aggregate may accumulate partials straight from the
   batches; otherwise it must materialise first or double-count. *)
let rec duplicate_free = function
  | Plan.Project _ -> false
  | Plan.Filter (_, c) | Plan.Batched c -> duplicate_free c
  | Plan.Hash_join { left; right; _ } ->
    duplicate_free left && duplicate_free right
  | Plan.Scan _ -> true
  | Plan.Nested_loop _ | Plan.Merge_union _ | Plan.Merge_intersect _
  | Plan.Merge_diff _ | Plan.Hash_aggregate _ | Plan.Grouped_aggregate _
  | Plan.Sketch_count _ | Plan.Sketch_sample _ ->
    true

(* ---------- scans ---------- *)

(* Execute a leaf.  The access path recorded in the plan is advisory
   (EXPLAIN); execution re-derives it through [Access.select], which
   re-checks index existence and key-type homogeneity against the
   table's current state — a cached plan can therefore never return
   wrong rows after a DROP INDEX or a type-heterogeneous insert, it only
   loses the speedup until replanned. *)
let scan db ~tau name pred =
  let table = Database.table_exn db name in
  match pred with
  | None -> Table.snapshot table ~tau
  | Some p -> Access.select table ~tau p

(* ---------- the executor ---------- *)

(* Profile-tree navigation: [Profile.of_plan] mirrors the plan shape, so
   a node's children line up with the plan node's sub-plans. *)
let child1 = function
  | Some { Profile.children = [ c ]; _ } -> Some c
  | Some _ | None -> None

let child2 = function
  | Some { Profile.children = [ l; r ]; _ } -> (Some l, Some r)
  | Some _ | None -> (None, None)

(* What a vectorized subtree yields: live batches plus the arity (the
   batch list may be empty) and the subtree's [texp(e)] — finite only
   when a tuple-mode fallback below contributed one (a difference's
   first reappearance, say); the vectorized operators themselves follow
   the same propagation rules as their streaming twins. *)
type bres = {
  b_arity : int;
  b_batches : Batch.t list;
  b_texp : Time.t;
}

let batch_rows bs = List.fold_left (fun a b -> a + Batch.length b) 0 bs

(* The operator span hook: polymorphic over the node's result so one
   hook wraps both the materialised and the vectorized executors;
   [rows] tells the span its output cardinality without exposing the
   representation. *)
type probe = {
  probe : 'a. string -> rows:('a -> int) -> (unit -> 'a) -> 'a;
}

let run ?(strategy = Aggregate.Exact) ?probe ?profile ~db compiled =
  let { Plan.logical; physical } = compiled in
  (* Mirror Eval.run's up-front well-formedness check so the physical
     path raises the same errors on the same inputs. *)
  let arity_env name = Option.map Table.arity (Database.table db name) in
  let (_ : int) = Algebra.arity ~env:arity_env logical in
  let tau = Database.now db in
  (* Per-query vectorization totals, folded into the process-global
     observability counters once at the end — one mutex acquisition per
     query, nothing per batch or per row. *)
  let vec_batches = ref 0 and vec_rows = ref 0 in
  let vec_cut = ref 0 and vec_rebatches = ref 0 in
  let rec go p prof =
    let k =
      match prof with
      | None -> fun () -> exec_node p prof
      | Some n ->
        fun () ->
          let t0 = Unix.gettimeofday () in
          let r = exec_node p prof in
          n.Profile.time_us <-
            n.Profile.time_us
            + int_of_float ((Unix.gettimeofday () -. t0) *. 1e6);
          n.Profile.rows <-
            n.Profile.rows + Relation.cardinal r.Eval.relation;
          r
    in
    match probe with
    | None -> k ()
    | Some f ->
      f.probe (Plan.operator_name p)
        ~rows:(fun r -> Relation.cardinal r.Eval.relation)
        k
  and exec_node p prof =
    match p with
    | Plan.Scan { name; pred; access = _ } ->
      let relation =
        match prof with
        | None -> scan db ~tau name pred
        | Some n -> (
          let table = Database.table_exn db name in
          match pred with
          | None ->
            let snap = Table.snapshot table ~tau in
            n.Profile.expired_dropped <-
              n.Profile.expired_dropped
              + (Table.physical_count table - Relation.cardinal snap);
            snap
          | Some q ->
            let stats = Access.fresh_stats () in
            let r = Access.select ~stats table ~tau q in
            n.Profile.expired_dropped <-
              n.Profile.expired_dropped + stats.Access.expired_dropped;
            n.Profile.index_visited <-
              n.Profile.index_visited + stats.Access.index_visited;
            r)
      in
      { Eval.relation; texp = Time.Inf }
    | Plan.Filter (pred, c) ->
      let child = go c (child1 prof) in
      { child with Eval.relation = Ops.select pred child.Eval.relation }
    | Plan.Project (js, c) ->
      let child = go c (child1 prof) in
      { child with Eval.relation = Ops.project js child.Eval.relation }
    | Plan.Nested_loop { pred; left; right } ->
      let lp, rp = child2 prof in
      let lr = go left lp and rr = go right rp in
      { Eval.relation = nested_loop pred lr.Eval.relation rr.Eval.relation;
        texp = Time.min lr.Eval.texp rr.Eval.texp
      }
    | Plan.Hash_join { pairs; pred; left; right } ->
      let lp, rp = child2 prof in
      let lr = go left lp and rr = go right rp in
      (match prof with
       | Some n ->
         n.Profile.build_rows <-
           n.Profile.build_rows + Relation.cardinal rr.Eval.relation
       | None -> ());
      { Eval.relation = hash_join ~pairs ~pred lr.Eval.relation rr.Eval.relation;
        texp = Time.min lr.Eval.texp rr.Eval.texp
      }
    | Plan.Merge_union (left, right) ->
      let lp, rp = child2 prof in
      let lr = go left lp and rr = go right rp in
      { Eval.relation = merge_union lr.Eval.relation rr.Eval.relation;
        texp = Time.min lr.Eval.texp rr.Eval.texp
      }
    | Plan.Merge_intersect (left, right) ->
      let lp, rp = child2 prof in
      let lr = go left lp and rr = go right rp in
      { Eval.relation = merge_intersect lr.Eval.relation rr.Eval.relation;
        texp = Time.min lr.Eval.texp rr.Eval.texp
      }
    | Plan.Merge_diff (left, right) ->
      let lp, rp = child2 prof in
      let lr = go left lp and rr = go right rp in
      let reappearance =
        Ops.first_reappearance lr.Eval.relation rr.Eval.relation
      in
      { Eval.relation = merge_diff lr.Eval.relation rr.Eval.relation;
        texp = Time.min (Time.min lr.Eval.texp rr.Eval.texp) reappearance
      }
    | Plan.Hash_aggregate { group; func; child = c } ->
      let child = go c (child1 prof) in
      let relation, invalidation =
        Ops.aggregate strategy ~tau ~group func child.Eval.relation
      in
      { Eval.relation; texp = Time.min child.Eval.texp invalidation }
    | Plan.Grouped_aggregate { group; func; having; projection; child = c } ->
      (match strategy, c with
       | Aggregate.Exact, Plan.Batched inner when duplicate_free inner ->
         (* The batch fast path: accumulate the expiration-slice
            partials straight from the child's batches through column
            accessors — no tuple, no relation, no materialise at the
            boundary.  Guarded by [duplicate_free]: a vectorized
            projection below could alias rows whose max-merge only the
            materialise boundary performs, and slices must count each
            set member exactly once. *)
         let r = go_b c (child1 prof) in
         vec_batches := !vec_batches + List.length r.b_batches;
         vec_rows := !vec_rows + batch_rows r.b_batches;
         let acc =
           List.fold_left
             (fun acc b ->
               Batch.fold_rows b ~init:acc ~f:(fun acc attr texp ->
                   Partial_agg.observe_acc ~group ~func ~attr ~texp acc))
             Partial_agg.empty_acc r.b_batches
         in
         let relation, invalidation =
           Partial_agg.finalize ~group ~func ~child_arity:r.b_arity ?having
             ~projection (Partial_agg.of_acc acc)
         in
         { Eval.relation; texp = Time.min r.b_texp invalidation }
       | Aggregate.Exact, c ->
         let child = go c (child1 prof) in
         let child_arity = Relation.arity child.Eval.relation in
         let relation, invalidation =
           Partial_agg.finalize ~group ~func ~child_arity ?having ~projection
             (Partial_agg.of_relation ~group ~func child.Eval.relation)
         in
         { Eval.relation; texp = Time.min child.Eval.texp invalidation }
       | (Aggregate.Conservative | Aggregate.Neutral | Aggregate.Within _), c
         ->
         (* The non-exact strategies are not recomputable from slice
            partials (neutral subsets need member identity); compose the
            reference operators instead. *)
         let child = go c (child1 prof) in
         let grouped, invalidation =
           Ops.aggregate strategy ~tau ~group func child.Eval.relation
         in
         let selected =
           match having with
           | None -> grouped
           | Some p -> Ops.select p grouped
         in
         { Eval.relation = Ops.project projection selected;
           texp = Time.min child.Eval.texp invalidation
         })
    | Plan.Batched c ->
      (* The materialise boundary: everything below ran (or was
         rebatched) in columnar form; surviving rows become a relation
         again, coinciding tuples max-merging exactly as the streaming
         kernels' [Relation.add] would have along the way. *)
      let r = go_b c (child1 prof) in
      vec_batches := !vec_batches + List.length r.b_batches;
      vec_rows := !vec_rows + batch_rows r.b_batches;
      { Eval.relation = Batch.to_relation ~arity:r.b_arity r.b_batches;
        texp = r.b_texp
      }
    | Plan.Sketch_count { epsilon; child = c } ->
      sketch_node (Approx.Count { epsilon }) ~arity:2 c prof
    | Plan.Sketch_sample { k; child = c } ->
      sketch_node (Approx.Sample { k }) ~arity:(-1) c prof
  (* The vectorized twin of [go]: evaluates a batch-mode subtree to
     column batches, emitting the same per-operator probe spans and
     profile counters — rows summed over batches instead of a relation
     cardinal, plus the batch count. *)
  and go_b p prof =
    if not (Plan.vectorizable p) then rebatch p prof
    else
      let k =
        match prof with
        | None -> fun () -> exec_batch_node p prof
        | Some n ->
          fun () ->
            let t0 = Unix.gettimeofday () in
            let r = exec_batch_node p prof in
            n.Profile.time_us <-
              n.Profile.time_us
              + int_of_float ((Unix.gettimeofday () -. t0) *. 1e6);
            n.Profile.rows <- n.Profile.rows + batch_rows r.b_batches;
            n.Profile.batches <-
              n.Profile.batches + List.length r.b_batches;
            r
      in
      match probe with
      | None -> k ()
      | Some f ->
        f.probe (Plan.operator_name p) ~rows:(fun r -> batch_rows r.b_batches) k
  (* A tuple-mode operator feeding a vectorized parent: run it through
     [go] — its own timing and probe span — then re-enter batch form.
     The materialised relation is a deduplicated set, so the rebatched
     rows satisfy every downstream kernel's assumptions; its possibly
     finite [texp(e)] (a difference's reappearance, say) threads through
     [b_texp]. *)
  and rebatch p prof =
    let child = go p prof in
    incr vec_rebatches;
    { b_arity = Relation.arity child.Eval.relation;
      b_batches = Batch.of_relation child.Eval.relation;
      b_texp = child.Eval.texp
    }
  and exec_batch_node p prof =
    match p with
    | Plan.Batched c ->
      (* A nested boundary — the fused aggregate hands the whole
         [Batched] node here; no materialise, just descend. *)
      go_b c (child1 prof)
    | Plan.Scan { name; pred; access = _ } -> scan_batches name pred prof
    | Plan.Filter (q, c) ->
      let r = go_b c (child1 prof) in
      let kernel = Predicate.compile q in
      { r with b_batches = List.filter_map (Batch.filter kernel) r.b_batches }
    | Plan.Project (js, c) ->
      let r = go_b c (child1 prof) in
      { r with
        b_arity = List.length js;
        b_batches = List.map (Batch.project js) r.b_batches
      }
    | Plan.Hash_join { pairs; pred; left; right } ->
      let lp, rp = child2 prof in
      let lr = go_b left lp and rr = go_b right rp in
      (match prof with
       | Some n ->
         n.Profile.build_rows <-
           n.Profile.build_rows + batch_rows rr.b_batches
       | None -> ());
      { b_arity = lr.b_arity + rr.b_arity;
        b_batches =
          batch_hash_join ~pairs ~pred ~left_arity:lr.b_arity
            ~right_arity:rr.b_arity lr.b_batches rr.b_batches;
        b_texp = Time.min lr.b_texp rr.b_texp
      }
    | ( Plan.Nested_loop _ | Plan.Merge_union _ | Plan.Merge_intersect _
      | Plan.Merge_diff _ | Plan.Hash_aggregate _ | Plan.Grouped_aggregate _
      | Plan.Sketch_count _ | Plan.Sketch_sample _ ) as q ->
      (* Unreachable through [go_b]'s vectorizable guard; kept explicit
         so a vectorizable/exec_batch_node mismatch degrades to the
         tuple fallback instead of crashing a query. *)
      rebatch q prof
  (* The batch-producing leaf.  Full scans cut the table's memoised
     texp-sorted chunks at [tau]: wholly-expired chunks are skipped
     without touching a row, wholly-live chunks pass through zero-copy,
     straddlers pay one binary search — the per-row liveness filter of
     the tuple path disappears entirely.  Index paths re-enter their
     candidate lists through [Batch.of_rows].  Like [scan], the access
     path is re-derived against the table's current state, so a stale
     plan loses only speed, never correctness. *)
  and scan_batches name pred prof =
    let table = Database.table_exn db name in
    let arity = Table.arity table in
    let count_cut skipped =
      if skipped > 0 then begin
        vec_cut := !vec_cut + skipped;
        match prof with
        | Some n ->
          n.Profile.expired_dropped <- n.Profile.expired_dropped + skipped;
          n.Profile.cut_skipped <- n.Profile.cut_skipped + skipped
        | None -> ()
      end
    in
    let cut_scan () =
      let chunks = Relation.sorted_chunks (Table.physical_relation table) in
      let acc = ref [] in
      Array.iter
        (fun c ->
          let b, skipped = Batch.cut_chunk ~arity ~tau c in
          count_cut skipped;
          match b with None -> () | Some b -> acc := b :: !acc)
        chunks;
      List.rev !acc
    in
    let batches =
      match pred with
      | None -> cut_scan ()
      | Some q ->
        let kernel = Predicate.compile q in
        let filtered bs = List.filter_map (Batch.filter kernel) bs in
        (match Access.plan table q with
         | Access.Full_scan -> filtered (cut_scan ())
         | Access.Never_matches -> []
         | Access.Index_eq { column; value } ->
           let dropped = ref 0 in
           let rows = Table.index_lookup ~dropped table ~column ~tau value in
           (match prof with
            | Some n ->
              n.Profile.expired_dropped <-
                n.Profile.expired_dropped + !dropped
            | None -> ());
           filtered (Option.to_list (Batch.of_rows ~arity rows))
         | Access.Index_range { column; lo; hi } ->
           let visited = ref 0 and dropped = ref 0 in
           let rows =
             Table.index_range ~visited ~dropped table ~column ~tau ~lo ~hi
           in
           (match prof with
            | Some n ->
              n.Profile.expired_dropped <-
                n.Profile.expired_dropped + !dropped;
              n.Profile.index_visited <- n.Profile.index_visited + !visited
            | None -> ());
           filtered (Option.to_list (Batch.of_rows ~arity rows)))
    in
    { b_arity = arity; b_batches = batches; b_texp = Time.Inf }
  (* Folds the child into a bounded-memory sketch and answers from it.
     [arity = -1] means "the child's own arity" (samples return child
     rows; counts return [estimate, within]). *)
  and sketch_node spec ~arity c prof =
    let child = go c (child1 prof) in
    let sketch = Approx.build spec child.Eval.relation in
    let arity =
      if arity >= 0 then arity else Relation.arity child.Eval.relation
    in
    Expirel_sketch.Observatory.record
      ~name:(Approx.name spec)
      ~memory_bytes:(Expirel_sketch.Any.memory_bytes sketch)
      ~estimate:(Expirel_sketch.Any.live_estimate ~tau sketch);
    (match prof with
     | Some n ->
       n.Profile.sketch_bytes <-
         n.Profile.sketch_bytes + Expirel_sketch.Any.memory_bytes sketch
     | None -> ());
    Approx.result ~tau ~arity ~child_texp:child.Eval.texp sketch
  in
  let result = go physical profile in
  if !vec_batches > 0 || !vec_rows > 0 || !vec_cut > 0 || !vec_rebatches > 0
  then
    Expirel_obs.Vec_stats.record ~batches:!vec_batches ~rows:!vec_rows
      ~cut_skipped:!vec_cut ~rebatches:!vec_rebatches;
  result
