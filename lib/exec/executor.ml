open Expirel_core
open Expirel_storage

(* ---------- physical join kernels ---------- *)

(* Streaming select-over-product: same pairs, predicate and texp rule as
   [Ops.join p = select p (product l r)] (Equations (2) and (5)), but
   without materialising the product — O(|l|·|r|) time, O(out) space. *)
let nested_loop pred left right =
  let arity = Relation.arity left + Relation.arity right in
  Relation.fold
    (fun l e_l acc ->
      Relation.fold
        (fun r e_r acc ->
          let t = Tuple.concat l r in
          if Predicate.eval pred t then
            Relation.add t ~texp:(Time.min e_l e_r) acc
          else acc)
        right acc)
    left
    (Relation.empty ~arity)

(* Hash-join key normalisation.  Bucket equality must refine the
   predicate's equality ([Value.cmp]): values cmp considers equal must
   land in the same bucket (misses lose result rows), while collisions
   are harmless because the full predicate is re-verified per candidate.
   cmp coerces Int-vs-Float numerically, so both map to Float keys; Null
   compares equal to nothing (itself included), so Null-keyed tuples
   cannot satisfy an equality conjunct and are dropped outright.  NaN is
   the one value where structural hashing diverges the other way (cmp
   says NaN = NaN, generic equality says otherwise): those rare tuples
   take a per-tuple nested-loop fallback instead. *)
type key_class =
  | Key of Value.t list
  | Dead  (* a Null key attribute: no equality conjunct can hold *)
  | Fallback  (* a NaN key attribute: hashing would miss cmp-equal pairs *)

let key_of tuple cols =
  let rec go acc = function
    | [] -> Key (List.rev acc)
    | c :: rest ->
      (match Tuple.attr tuple c with
       | Value.Null -> Dead
       | Value.Int n -> go (Value.Float (float_of_int n) :: acc) rest
       | Value.Float f when Float.is_nan f -> Fallback
       | v -> go (v :: acc) rest)
  in
  go [] cols

let hash_join ~pairs ~pred left right =
  let arity = Relation.arity left + Relation.arity right in
  let left_cols = List.map fst pairs and right_cols = List.map snd pairs in
  let table = Hashtbl.create (max 16 (2 * Relation.cardinal right)) in
  Relation.iter
    (fun s e_s ->
      match key_of s right_cols with
      | Key k -> Hashtbl.add table k (s, e_s)
      | Dead | Fallback -> ())
    right;
  let emit l e_l acc (s, e_s) =
    let t = Tuple.concat l s in
    if Predicate.eval pred t then Relation.add t ~texp:(Time.min e_l e_s) acc
    else acc
  in
  Relation.fold
    (fun l e_l acc ->
      match key_of l left_cols with
      | Dead -> acc
      | Key k -> List.fold_left (emit l e_l) acc (Hashtbl.find_all table k)
      | Fallback ->
        Relation.fold (fun s e_s acc -> emit l e_l acc (s, e_s)) right acc)
    left
    (Relation.empty ~arity)

(* ---------- merge kernels ---------- *)

(* Relations are ordered maps, so [to_list] is sorted by [Tuple.compare]
   with distinct keys: set operations become one linear merge instead of
   per-tuple searches of the other side. *)
let merge ~left_only ~right_only ~both left right =
  let arity = Relation.arity left in
  let rec go xs ys acc =
    match xs, ys with
    | [], ys -> List.fold_left (fun acc (t, e) -> right_only t e acc) acc ys
    | xs, [] -> List.fold_left (fun acc (t, e) -> left_only t e acc) acc xs
    | ((tx, ex) :: xs' as xs), ((ty, ey) :: ys' as ys) ->
      let c = Tuple.compare tx ty in
      if c < 0 then go xs' ys (left_only tx ex acc)
      else if c > 0 then go xs ys' (right_only ty ey acc)
      else go xs' ys' (both tx ex ey acc)
  in
  go (Relation.to_list left) (Relation.to_list right)
    (Relation.empty ~arity)

let keep t e acc = Relation.add t ~texp:e acc
let skip _ _ acc = acc

let merge_union =
  merge ~left_only:keep ~right_only:keep ~both:(fun t e_l e_r acc ->
      Relation.add t ~texp:(Time.max e_l e_r) acc)

let merge_intersect =
  merge ~left_only:skip ~right_only:skip ~both:(fun t e_l e_r acc ->
      Relation.add t ~texp:(Time.min e_l e_r) acc)

let merge_diff =
  merge ~left_only:keep ~right_only:skip ~both:(fun _ _ _ acc -> acc)

(* ---------- scans ---------- *)

(* Execute a leaf.  The access path recorded in the plan is advisory
   (EXPLAIN); execution re-derives it through [Access.select], which
   re-checks index existence and key-type homogeneity against the
   table's current state — a cached plan can therefore never return
   wrong rows after a DROP INDEX or a type-heterogeneous insert, it only
   loses the speedup until replanned. *)
let scan db ~tau name pred =
  let table = Database.table_exn db name in
  match pred with
  | None -> Table.snapshot table ~tau
  | Some p -> Access.select table ~tau p

(* ---------- the executor ---------- *)

(* Profile-tree navigation: [Profile.of_plan] mirrors the plan shape, so
   a node's children line up with the plan node's sub-plans. *)
let child1 = function
  | Some { Profile.children = [ c ]; _ } -> Some c
  | Some _ | None -> None

let child2 = function
  | Some { Profile.children = [ l; r ]; _ } -> (Some l, Some r)
  | Some _ | None -> (None, None)

let run ?(strategy = Aggregate.Exact) ?probe ?profile ~db compiled =
  let { Plan.logical; physical } = compiled in
  (* Mirror Eval.run's up-front well-formedness check so the physical
     path raises the same errors on the same inputs. *)
  let arity_env name = Option.map Table.arity (Database.table db name) in
  let (_ : int) = Algebra.arity ~env:arity_env logical in
  let tau = Database.now db in
  let rec go p prof =
    let k =
      match prof with
      | None -> fun () -> exec_node p prof
      | Some n ->
        fun () ->
          let t0 = Unix.gettimeofday () in
          let r = exec_node p prof in
          n.Profile.time_us <-
            n.Profile.time_us
            + int_of_float ((Unix.gettimeofday () -. t0) *. 1e6);
          n.Profile.rows <-
            n.Profile.rows + Relation.cardinal r.Eval.relation;
          r
    in
    match probe with
    | None -> k ()
    | Some f -> f (Plan.operator_name p) k
  and exec_node p prof =
    match p with
    | Plan.Scan { name; pred; access = _ } ->
      let relation =
        match prof with
        | None -> scan db ~tau name pred
        | Some n -> (
          let table = Database.table_exn db name in
          match pred with
          | None ->
            let snap = Table.snapshot table ~tau in
            n.Profile.expired_dropped <-
              n.Profile.expired_dropped
              + (Table.physical_count table - Relation.cardinal snap);
            snap
          | Some q ->
            let stats = Access.fresh_stats () in
            let r = Access.select ~stats table ~tau q in
            n.Profile.expired_dropped <-
              n.Profile.expired_dropped + stats.Access.expired_dropped;
            n.Profile.index_visited <-
              n.Profile.index_visited + stats.Access.index_visited;
            r)
      in
      { Eval.relation; texp = Time.Inf }
    | Plan.Filter (pred, c) ->
      let child = go c (child1 prof) in
      { child with Eval.relation = Ops.select pred child.Eval.relation }
    | Plan.Project (js, c) ->
      let child = go c (child1 prof) in
      { child with Eval.relation = Ops.project js child.Eval.relation }
    | Plan.Nested_loop { pred; left; right } ->
      let lp, rp = child2 prof in
      let lr = go left lp and rr = go right rp in
      { Eval.relation = nested_loop pred lr.Eval.relation rr.Eval.relation;
        texp = Time.min lr.Eval.texp rr.Eval.texp
      }
    | Plan.Hash_join { pairs; pred; left; right } ->
      let lp, rp = child2 prof in
      let lr = go left lp and rr = go right rp in
      (match prof with
       | Some n ->
         n.Profile.build_rows <-
           n.Profile.build_rows + Relation.cardinal rr.Eval.relation
       | None -> ());
      { Eval.relation = hash_join ~pairs ~pred lr.Eval.relation rr.Eval.relation;
        texp = Time.min lr.Eval.texp rr.Eval.texp
      }
    | Plan.Merge_union (left, right) ->
      let lp, rp = child2 prof in
      let lr = go left lp and rr = go right rp in
      { Eval.relation = merge_union lr.Eval.relation rr.Eval.relation;
        texp = Time.min lr.Eval.texp rr.Eval.texp
      }
    | Plan.Merge_intersect (left, right) ->
      let lp, rp = child2 prof in
      let lr = go left lp and rr = go right rp in
      { Eval.relation = merge_intersect lr.Eval.relation rr.Eval.relation;
        texp = Time.min lr.Eval.texp rr.Eval.texp
      }
    | Plan.Merge_diff (left, right) ->
      let lp, rp = child2 prof in
      let lr = go left lp and rr = go right rp in
      let reappearance =
        Ops.first_reappearance lr.Eval.relation rr.Eval.relation
      in
      { Eval.relation = merge_diff lr.Eval.relation rr.Eval.relation;
        texp = Time.min (Time.min lr.Eval.texp rr.Eval.texp) reappearance
      }
    | Plan.Hash_aggregate { group; func; child = c } ->
      let child = go c (child1 prof) in
      let relation, invalidation =
        Ops.aggregate strategy ~tau ~group func child.Eval.relation
      in
      { Eval.relation; texp = Time.min child.Eval.texp invalidation }
    | Plan.Grouped_aggregate { group; func; having; projection; child = c } ->
      let child = go c (child1 prof) in
      (match strategy with
       | Aggregate.Exact ->
         let child_arity = Relation.arity child.Eval.relation in
         let relation, invalidation =
           Partial_agg.finalize ~group ~func ~child_arity ?having ~projection
             (Partial_agg.of_relation ~group ~func child.Eval.relation)
         in
         { Eval.relation; texp = Time.min child.Eval.texp invalidation }
       | Aggregate.Conservative | Aggregate.Neutral | Aggregate.Within _ ->
         (* The non-exact strategies are not recomputable from slice
            partials (neutral subsets need member identity); compose the
            reference operators instead. *)
         let grouped, invalidation =
           Ops.aggregate strategy ~tau ~group func child.Eval.relation
         in
         let selected =
           match having with
           | None -> grouped
           | Some p -> Ops.select p grouped
         in
         { Eval.relation = Ops.project projection selected;
           texp = Time.min child.Eval.texp invalidation
         })
    | Plan.Sketch_count { epsilon; child = c } ->
      sketch_node (Approx.Count { epsilon }) ~arity:2 c prof
    | Plan.Sketch_sample { k; child = c } ->
      sketch_node (Approx.Sample { k }) ~arity:(-1) c prof
  (* Folds the child into a bounded-memory sketch and answers from it.
     [arity = -1] means "the child's own arity" (samples return child
     rows; counts return [estimate, within]). *)
  and sketch_node spec ~arity c prof =
    let child = go c (child1 prof) in
    let sketch = Approx.build spec child.Eval.relation in
    let arity =
      if arity >= 0 then arity else Relation.arity child.Eval.relation
    in
    Expirel_sketch.Observatory.record
      ~name:(Approx.name spec)
      ~memory_bytes:(Expirel_sketch.Any.memory_bytes sketch)
      ~estimate:(Expirel_sketch.Any.live_estimate ~tau sketch);
    (match prof with
     | Some n ->
       n.Profile.sketch_bytes <-
         n.Profile.sketch_bytes + Expirel_sketch.Any.memory_bytes sketch
     | None -> ());
    Approx.result ~tau ~arity ~child_texp:child.Eval.texp sketch
  in
  go physical profile
