open Expirel_core

(* A batch: one chunk of rows in column-major layout, a parallel
   expiration-time array, and an optional selection vector.  Filters
   never copy data — they narrow [sel] — and projections only permute
   the column-array pointers, so a pipeline of scan → filter → project
   touches each value at most once, at materialisation (or aggregate
   accumulation) time.

   Scan-produced batches come straight from a relation's memoised
   texp-sorted chunks ([Relation.sorted_chunks]) with [sel = None]:
   zero copies for a wholly-live chunk, and the live cut inside a
   straddling chunk is a suffix selection found by one binary search.
   Batches re-entered from the tuple-at-a-time fallback ([of_relation])
   are in tuple order instead — sortedness only matters at scan leaves,
   where the [tau] filter runs; every operator above sees live rows
   only. *)

type t = {
  arity : int;
  cols : Value.t array array;  (* [arity] columns, [full] values each *)
  texps : Time.t array;  (* parallel to the columns *)
  sel : int array option;  (* selected row ids, ascending; [None] = all *)
}

let arity b = b.arity
let length b =
  match b.sel with
  | Some s -> Array.length s
  | None -> Array.length b.texps

(* Iterate the selected rows: [f] receives the physical row id, valid
   as an index into every column and into [texps]. *)
let iter_rows f b =
  match b.sel with
  | None ->
    for i = 0 to Array.length b.texps - 1 do
      f i
    done
  | Some s -> Array.iter f s

let fold_rows b ~init ~f =
  let acc = ref init in
  iter_rows (fun i -> acc := f !acc (fun j -> b.cols.(j - 1).(i)) b.texps.(i)) b;
  !acc

(* ---------- construction ---------- *)

let of_chunk ~arity c =
  { arity;
    cols = Array.init arity (fun j -> Relation.chunk_col c (j + 1));
    texps = Relation.chunk_texps c;
    sel = None
  }

(* The live suffix of a texp-ascending chunk: [None] when the whole
   chunk has expired.  Returns the number of rows the cut skipped. *)
let cut_chunk ~arity ~tau c =
  let len = Relation.chunk_len c in
  if len = 0 then None, 0
  else
    let texps = Relation.chunk_texps c in
    if Time.(texps.(0) > tau) then Some (of_chunk ~arity c), 0
    else if Time.(texps.(len - 1) <= tau) then None, len
    else
      let first = Relation.live_cut texps ~tau 0 len in
      let b = of_chunk ~arity c in
      Some { b with sel = Some (Array.init (len - first) (fun i -> first + i)) },
      first

let of_rows ~arity rows =
  let n = List.length rows in
  if n = 0 then None
  else begin
    let cols = Array.init arity (fun _ -> Array.make n Value.Null) in
    let texps = Array.make n Time.Inf in
    List.iteri
      (fun i (t, e) ->
        texps.(i) <- e;
        for j = 0 to arity - 1 do
          cols.(j).(i) <- Tuple.attr t (j + 1)
        done)
      rows;
    Some { arity; cols; texps; sel = None }
  end

(* ---------- the growable output side ---------- *)

(* Join (and rebatch) outputs accumulate here: fixed-size column
   buffers flushed into finished batches as they fill. *)
module Builder = struct
  type batch = t

  type nonrec t = {
    b_arity : int;
    mutable buf_cols : Value.t array array;
    mutable buf_texps : Time.t array;
    mutable fill : int;
    mutable done_ : batch list;  (* reverse order *)
  }

  let fresh_cols arity = Array.init arity (fun _ -> Array.make Relation.chunk_rows Value.Null)

  let create ~arity =
    { b_arity = arity;
      buf_cols = fresh_cols arity;
      buf_texps = Array.make Relation.chunk_rows Time.Inf;
      fill = 0;
      done_ = []
    }

  let flush b =
    if b.fill > 0 then begin
      let n = b.fill in
      let cols =
        if n = Relation.chunk_rows then b.buf_cols
        else Array.map (fun col -> Array.sub col 0 n) b.buf_cols
      in
      let texps =
        if n = Relation.chunk_rows then b.buf_texps
        else Array.sub b.buf_texps 0 n
      in
      b.done_ <- { arity = b.b_arity; cols; texps; sel = None } :: b.done_;
      b.buf_cols <- fresh_cols b.b_arity;
      b.buf_texps <- Array.make Relation.chunk_rows Time.Inf;
      b.fill <- 0
    end

  (* [get] is a 1-based attribute source for the row being appended. *)
  let add b get texp =
    let i = b.fill in
    for j = 0 to b.b_arity - 1 do
      b.buf_cols.(j).(i) <- get (j + 1)
    done;
    b.buf_texps.(i) <- texp;
    b.fill <- i + 1;
    if b.fill = Relation.chunk_rows then flush b

  let to_batches b =
    flush b;
    List.rev b.done_
end

let of_relation r =
  let builder = Builder.create ~arity:(Relation.arity r) in
  Relation.iter (fun t e -> Builder.add builder (Tuple.attr t) e) r;
  Builder.to_batches builder

(* ---------- vectorised operators ---------- *)

(* Selection narrows the selection vector; the columns are shared.
   [None] when no row passes. *)
let filter kernel b =
  let hits = ref [] and n = ref 0 in
  iter_rows
    (fun i ->
      if kernel (fun j -> b.cols.(j - 1).(i)) then begin
        hits := i :: !hits;
        incr n
      end)
    b;
  if !n = 0 then None
  else begin
    let sel = Array.make !n 0 in
    List.iteri (fun k i -> sel.(!n - 1 - k) <- i) !hits;
    Some { b with sel = Some sel }
  end

(* Projection permutes column pointers — zero copies.  Coinciding
   output rows are *not* merged here; the max-merge happens at the
   materialise boundary (Relation.add), which commutes with every
   vectorised operator above (see DESIGN.md). *)
let project js b =
  { b with arity = List.length js; cols = Array.of_list (List.map (fun j -> b.cols.(j - 1)) js) }

(* ---------- the materialise boundary ---------- *)

let to_relation ~arity batches =
  List.fold_left
    (fun acc b ->
      fold_rows b ~init:acc ~f:(fun acc get texp ->
          Relation.add (Tuple.init ~arity get) ~texp acc))
    (Relation.empty ~arity) batches
