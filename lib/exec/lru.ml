type ('k, 'v) entry = {
  value : 'v;
  mutable used : int;
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) entry) Hashtbl.t;
  mutable tick : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity < 1"
  else { capacity; table = Hashtbl.create capacity; tick = 0 }

let capacity t = t.capacity
let length t = Hashtbl.length t.table
let clear t = Hashtbl.reset t.table

let touch t entry =
  t.tick <- t.tick + 1;
  entry.used <- t.tick

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some entry ->
    touch t entry;
    Some entry.value

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (_, best) when best <= entry.used -> acc
        | _ -> Some (key, entry.used))
      t.table None
  in
  match victim with
  | Some (key, _) -> Hashtbl.remove t.table key
  | None -> ()

let set t key value =
  (match Hashtbl.find_opt t.table key with
   | Some _ -> Hashtbl.remove t.table key
   | None -> if Hashtbl.length t.table >= t.capacity then evict_lru t);
  let entry = { value; used = 0 } in
  touch t entry;
  Hashtbl.replace t.table key entry
