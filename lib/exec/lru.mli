(** A small least-recently-used cache (the plan cache's backing store).

    Eviction scans for the stalest entry — O(capacity), which is the
    right trade at plan-cache sizes (tens to hundreds of entries, and
    eviction only runs on insertion over capacity): no intrusive lists
    to keep consistent, no allocation on hit.

    Not thread-safe; callers serialise access (the interpreter holds a
    mutex around lookups and stores). *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** @raise Invalid_argument when [capacity < 1] *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int
val clear : ('k, 'v) t -> unit

val find : ('k, 'v) t -> 'k -> 'v option
(** Marks the entry most-recently used. *)

val set : ('k, 'v) t -> 'k -> 'v -> unit
(** Inserts or replaces; evicts the least-recently-used entry when at
    capacity.  Keys use structural equality and hashing. *)
