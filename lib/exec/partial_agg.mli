(** Decomposed (partial) aggregation — the distributable form of the
    paper's agg^exp (Section 2.6.1).

    A partial condenses a relation fragment into per-group expiration
    slices: per distinct finite expiration time the counts/sums/extrema
    of the members expiring exactly then, plus an immortal slice.
    Partials over disjoint fragments merge componentwise, and the exact
    strategy's outputs — the value at tau, the change point nu of
    Equation (9), the partition's complete-expiration time — are all
    recomputable from the merged slices.  AVG travels as SUM + COUNT
    (the [s_fsum]/[s_nonnull] components), never as an average, which
    is what makes it combinable across fragments.

    The executor's fused aggregate node and the cluster coordinator
    share this module: a single-node grouped query builds one partial
    and finalises it; a distributed one merges one partial per shard
    and runs the very same finalisation. *)

open Expirel_core

type slice = {
  s_texp : Time.t;  (** the instant these members expire; [Inf] = never *)
  s_rows : int;  (** members in the slice *)
  s_nonnull : int;  (** members with a non-null aggregated attribute *)
  s_sum : Value.t;  (** SUM partial; [Null] when no non-null member *)
  s_fsum : float;  (** AVG numerator (non-numeric attrs contribute 0) *)
  s_min : Value.t;  (** MIN partial; [Null] when no non-null member *)
  s_max : Value.t;  (** MAX partial *)
}

type group = {
  key : Value.t list;  (** the GROUP BY attribute values *)
  slices : slice list;  (** ascending [s_texp], the immortal slice last *)
}

type t = group list

val of_relation : group:int list -> func:Aggregate.func -> Relation.t -> t
(** Condense one (properly expired) fragment.  [group] are 1-based child
    positions; the aggregated attribute comes from [func].
    @raise Invalid_argument where [Aggregate.apply] would (a non-numeric
    SUM operand). *)

(** {2 Row-wise accumulation}

    The form {!of_relation} folds through, exposed so the batch
    executor can condense columnar batches row by row — through a
    1-based attribute accessor, never materialising a tuple. *)

type acc

val empty_acc : acc

val observe_acc :
  group:int list ->
  func:Aggregate.func ->
  attr:(int -> Value.t) ->
  texp:Time.t ->
  acc ->
  acc
(** Fold one row in; [attr] is its 1-based attribute accessor.
    @raise Invalid_argument on a non-numeric SUM operand. *)

val of_acc : acc -> t
(** [of_relation ~group ~func r] =
    [of_acc (fold observe_acc over r's rows)]. *)

val merge : t -> t -> t
(** Merge partials over disjoint fragments: groups unite by key, slices
    by expiration time, components add/extremise.
    @raise Invalid_argument on non-numeric SUM partials. *)

val merge_all : t list -> t

val finalize :
  group:int list ->
  func:Aggregate.func ->
  child_arity:int ->
  ?having:Predicate.t ->
  projection:int list ->
  t ->
  Relation.t * Time.t
(** [(rows, invalidation)]: the grouped query's result under the exact
    strategy, identical to composing [Ops.aggregate Exact] with the
    HAVING selection and the projection.  [projection] (and [having]'s
    columns) may mention GROUP BY positions and [child_arity + 1] (the
    aggregate); each output row carries [min (nu, empties)] — the
    union-rule collapse of the member rows' capped expirations — and
    [invalidation] is the earliest change point that outruns its
    partition's own expiry, folded over every partition pre-HAVING. *)
