(** The cluster coordinator: hash-partitioned shards behind a versioned
    shard map, with expiration-aware scatter-gather reads.

    Every table is partitioned by its first column: a row lives on
    [Wire.shard_owner map key].  Writes route to the owning shard;
    distributable queries fan out in parallel to every shard whose
    partition can still hold live rows and the partial listings merge
    under the paper's union rule — per duplicate tuple the max [texp],
    for the whole result the min of the partial [texp(e)]s (exact,
    because hash partitions are disjoint).

    {2 Pruning invariant}

    The coordinator caches each shard's {!Wire.partition_texp} summary,
    refreshed by {e every} shard reply (query, ack, heartbeat pong).  A
    shard is skipped from a fan-out at evaluation time [tau] when its
    cached summary proves the partition empty:

    {v live_rows = 0  \/  max_texp <= tau v}

    This is sound because all writes flow through the coordinator and
    each write's ack refreshes the owner's summary — between refreshes
    a partition only shrinks (expiration), so emptiness once proven
    cannot be revoked except by an insert, which un-prunes the shard in
    the same round trip.  An [Err] reply or a failed contact clears the
    summary to {e unknown}, and unknown is never pruned. *)

open Expirel_server

type endpoint = Expirel_repl.Member.endpoint = {
  host : string;
  port : int;
}

type t

val create :
  ?node_name:string ->
  ?health_rules:Expirel_obs.Health.rule list ->
  ?heartbeat_interval:float ->
  shards:endpoint list ->
  unit ->
  t
(** Claims the given nodes as shards 0..n-1 under a fresh map (version
    1), installs it on each, and primes the clock mirror and partition
    summaries with one heartbeat round.  [heartbeat_interval] (default
    0.25 s) paces the background heartbeat thread; [0.] disables it
    (tests then drive {!heartbeat_now} deterministically).
    [health_rules] defaults to {!default_health_rules}.
    @raise Invalid_argument on an empty shard list *)

val close : t -> unit
(** Stops the heartbeat thread and closes every shard connection. *)

val exec :
  ?prune:bool -> ?trace:Expirel_obs.Trace.t -> t -> string ->
  Wire.response
(** One sqlx statement against the cluster.

    - Distributable queries (single-table selection/projection, UNION
      of such, tuple-preserving EXCEPT/INTERSECT) scatter-gather with
      pruning (disable with [~prune:false] to force a full broadcast —
      results are identical, that is the pruning soundness contract).
    - Grouped aggregates (GROUP BY, HAVING, COUNT/SUM/MIN/MAX/AVG) over
      one table combine from per-shard expiration-slice partials
      ({!Expirel_exec.Partial_agg}): rows {e and} texps identical to a
      single node holding all rows.  AVG travels as SUM + COUNT, never
      pre-averaged.
    - Two-table joins run shard-locally when co-partitioned (the
      condition equates both first columns, the hash key) and as
      broadcast hash joins otherwise (the smaller side, up to 4096
      rows, ships to every shard).  Oversized or [AT]-qualified
      broadcast joins, projected EXCEPT/INTERSECT and aggregates over
      joins fall back to gathering the base tables and computing at
      the coordinator — exact, at shipping cost.
    - [INSERT] routes to the key's owner shard.
    - DDL, [DELETE], [ADVANCE]/[TICK], [VACUUM] broadcast to all
      shards; [EXPLAIN]/[EXPLAIN ANALYZE] broadcast and concatenate
      per-shard reports.
    - Only per-node features — views, triggers, constraints,
      [CHECKPOINT] — are refused ([Err]).
    - A shard that dies or answers garbage mid-gather surfaces as one
      [Err] with code [Shard_failed] naming the shard.

    With [trace], spans record there and the context ships to every
    contacted shard ([rpc:shard-<id>] spans); without, a fresh trace is
    created and finished into this coordinator's trace store. *)

val query :
  ?prune:bool -> ?trace:Expirel_obs.Trace.t -> t -> string ->
  Wire.response
(** Alias of {!exec} — the coordinator routes by statement shape. *)

(** {1 Cluster management} *)

val shard_map : t -> Wire.shard_map

val add_shard : t -> endpoint -> (string, string) result
(** Grows the map by one shard: bootstraps the newcomer's catalog and
    clock, installs map [v+1] everywhere, then moves every row to its
    owner under the new map (extract / ingest / purge — purge last, so
    a mid-move failure duplicates rows, harmless to set semantics,
    rather than losing them). *)

val remove_shard : t -> int -> (string, string) result
(** Shrinks the map: installs [v+1] everywhere (including the leaving
    shard, so it knows to hand everything off), drains the leaver's
    rows to the survivors, then drops the slot. *)

val heartbeat_now : t -> unit
(** One synchronous heartbeat round ([Shard_ping] to every shard):
    refreshes reachability, staleness, partition summaries and the
    clock mirror.  The background thread calls this on its interval;
    tests with [~heartbeat_interval:0.] call it directly. *)

(** {1 Observability} *)

val metrics : t -> string
(** Prometheus exposition of the coordinator's registry
    ([expirel_cluster_*]: per-shard request counters, pruned-shard /
    fan-out / message / byte counters, map-version and shard-health
    gauges). *)

val health : t -> Wire.health_level * Wire.health_firing list
(** Evaluates the coordinator's health rules over its own metrics —
    with {!default_health_rules}: degraded from the first unreachable
    or stale shard, critical from a majority; plus the predictive storm
    rules over the merged horizon (refreshed by this call): degraded
    when half the cluster's live rows expire within the next window,
    or when the next ADVANCE window delivers hundreds of subscription
    events. *)

val horizon :
  ?table:string -> t ->
  (Expirel_obs.Horizon.report * (string * int) list, string) result
(** The cluster-wide expiration forecast: every shard's bucketed
    horizon gathered and merged bucket-wise — exact, because hash
    partitions are disjoint row sets.  Also returns the per-shard
    live-row breakdown (shard id as a string, live rows).  Refreshes
    the cache behind the [expirel_cluster_horizon_*] gauges when
    [table] is [None].  [table] restricts the forecast to one table. *)

val horizon_page : t -> (string, string) result
(** The merged cluster forecast rendered as a self-contained Prometheus
    text-format page ([expirel_horizon_rows{table,le}] histogram
    families plus fan-out, window and churn gauges) — gathered fresh on
    each call. *)

val default_health_rules : shards:int -> Expirel_obs.Health.rule list

val recent_traces : t -> int -> Wire.trace_entry list
(** The cluster-wide trace view, newest first: this coordinator's
    entries merged with every shard's — one trace id collects the
    coordinator lane plus a lane per contacted shard, ready for
    {!Expirel_obs.Trace_export}. *)

val trace_store : t -> Expirel_obs.Trace_store.t

type traffic = {
  fanouts : int;  (** scatter-gather queries executed *)
  pruned : int;  (** shard contacts skipped by the pruning invariant *)
  messages : int;  (** coordinator-to-shard requests sent *)
  bytes_sent : int;  (** encoded request bytes, framing included *)
  bytes_received : int;  (** encoded reply bytes, framing included *)
}

val traffic : t -> traffic
(** Cumulative traffic counters — the bench's measure of what pruning
    saves versus broadcast. *)

val summaries : t -> (int * Wire.partition_texp option * bool) list
(** Per shard: id, cached partition summary ([None] = unknown) and
    reachability — the raw inputs to the pruning decision. *)
