open Expirel_core
open Expirel_sqlx
open Expirel_server
open Expirel_repl
module Obs = Expirel_obs
module Sketch = Expirel_sketch

type endpoint = Member.endpoint = {
  host : string;
  port : int;
}

type slot = {
  shard : Wire.shard;
  member : Member.t;
  slot_lock : Mutex.t;  (* one in-flight request per connection *)
  requests : Obs.Instrument.Counter.t;
  mutable summary : Wire.partition_texp option;  (* None = unknown *)
  mutable map_version_seen : int;
  mutable reachable : bool;
}

type traffic = {
  fanouts : int;
  pruned : int;
  messages : int;
  bytes_sent : int;
  bytes_received : int;
}

type t = {
  node_name : string;
  registry : Obs.Registry.t;
  trace_store : Obs.Trace_store.t;
  health_rules : Obs.Health.rule list;
  requests_family : Obs.Instrument.Counter.t Obs.Instrument.Family.t;
  pruned_total : Obs.Instrument.Counter.t;
  fanouts_total : Obs.Instrument.Counter.t;
  messages_total : Obs.Instrument.Counter.t;
  bytes_sent_total : Obs.Instrument.Counter.t;
  bytes_received_total : Obs.Instrument.Counter.t;
  state : Mutex.t;  (* guards map/slots/now/tables *)
  tables : (string, string list) Hashtbl.t;
      (* the cluster catalog as this coordinator knows it: seeded from
         the CREATE TABLEs it broadcasts, lazily recovered from a
         zero-row describe scan otherwise (a coordinator can attach to
         an already-populated cluster) — distributed aggregates and
         joins need column names and arities before any shard replies *)
  mutable map : Wire.shard_map;
  mutable slots : slot list;  (* same order as [map.shards] *)
  mutable now : Time.t;  (* mirror of the cluster's logical clock *)
  mutable last_health : Obs.Health.level;
  mutable last_horizon : Obs.Horizon.report option;
      (* the last merged cluster forecast; the registry's horizon
         gauges read this cache so a scrape never fans out — HEALTH
         and HORIZON requests refresh it *)
  mutable hb_thread : Thread.t option;
  mutable stopping : bool;
  heartbeat_interval : float;
}

let locked t f =
  Mutex.lock t.state;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.state) f

let shard_map t = locked t (fun () -> t.map)
let slots t = locked t (fun () -> t.slots)

(* ---------- health ---------- *)

(* [shards] is the fleet size the critical thresholds scale with:
   one silent shard degrades, a majority gone is critical. *)
let default_health_rules ~shards =
  let majority = float_of_int ((shards / 2) + 1) in
  [ { Obs.Health.name = "unreachable_shards";
      source = Obs.Health.Metric "expirel_cluster_unreachable_shards";
      op = Obs.Health.Above;
      degraded = 1.;
      critical = majority;
      help = "shards that did not answer their last contact or heartbeat"
    };
    { Obs.Health.name = "stale_shard_maps";
      source = Obs.Health.Metric "expirel_cluster_stale_shards";
      op = Obs.Health.Above;
      degraded = 1.;
      critical = majority;
      help = "shards whose last heartbeat reported an older shard-map \
              version (a restarted shard reports v0 and has lost its \
              partition)"
    };
    (* Predictive, from the merged horizon cache: these fire before
       the trouble, not after — the forecast is exact because every
       tuple's expiration time is known today. *)
    { Obs.Health.name = "cluster_expiration_storm";
      source =
        Obs.Health.Ratio
          { num = "expirel_cluster_horizon_expiring_soon";
            den = "expirel_cluster_live_rows";
            min_den = 8.
          };
      op = Obs.Health.Above;
      degraded = 0.5;
      critical = 0.9;
      help = "fraction of the cluster's live rows expiring within the \
              next horizon window — the next ADVANCEs will drop them \
              all at once"
    };
    { Obs.Health.name = "cluster_fanout_storm";
      source = Obs.Health.Metric "expirel_cluster_horizon_fanout_events";
      op = Obs.Health.Above;
      degraded = 256.;
      critical = 4096.;
      help = "subscription events the next ADVANCE window delivers \
              across the cluster"
    }
  ]

(* ---------- per-shard RPC with traffic accounting ---------- *)

(* Every coordinator->shard message flows through here: one request in
   flight per connection (fan-out threads and the heartbeat thread
   share members), traffic counters fed from the encoded sizes (+4 for
   the length prefix), and the piggybacked partition summary harvested
   from whatever reply carries one. *)
let send t slot req =
  Mutex.lock slot.slot_lock;
  let result =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock slot.slot_lock)
      (fun () -> Member.on slot.member (fun c -> Client.request c req))
  in
  (match result with
   | Ok resp ->
     slot.reachable <- true;
     Obs.Instrument.Counter.incr slot.requests;
     Obs.Instrument.Counter.incr t.messages_total;
     Obs.Instrument.Counter.add t.bytes_sent_total
       (String.length (Wire.encode_request req) + 4);
     Obs.Instrument.Counter.add t.bytes_received_total
       (String.length (Wire.encode_response resp) + 4);
     (match resp with
      | Wire.Shard_rows { partition; _ }
      | Wire.Shard_ack { partition; _ }
      | Wire.Shard_sketch { partition; _ } ->
        slot.summary <- Some partition
      | Wire.Shard_pong { partition; pong_map_version; now; _ } ->
        slot.summary <- Some partition;
        slot.map_version_seen <- pong_map_version;
        locked t (fun () -> t.now <- Time.max t.now now)
      | Wire.Err _ ->
        (* A refused or failed statement tells us nothing about the
           partition; forget the cached summary rather than guess. *)
        slot.summary <- None
      | _ -> ())
   | Error _ ->
     slot.reachable <- false;
     slot.summary <- None);
  result

let ctx_of trace =
  Option.map
    (fun tr ->
      { Wire.trace_id = Obs.Trace.trace_id tr;
        parent_span = Option.value ~default:0 (Obs.Trace.current_parent tr)
      })
    trace

let exec_shard ?trace t slot sql =
  send t slot (Wire.Exec_shard { sql; ctx = ctx_of trace })

(* ---------- statement classification ---------- *)

(* Which queries distribute over the hash partitioning.

   Single-table selection/projection: exact — every base tuple lives on
   exactly one shard, [sigma]/[pi] commute with the partition union,
   and duplicate projected rows arising on different shards merge
   under the paper's union rule (max texp per tuple, min texp(e)
   overall), which the coordinator applies.

   UNION: distributes over any operands that do (set union is
   associative/commutative).

   EXCEPT / INTERSECT: only when both operands are tuple-preserving
   ([SELECT *] chains, filters allowed): equal tuples then share a
   first column, hence a shard, so the per-shard difference /
   intersection partitions the global one.  A projected operand breaks
   this (equal projected rows can originate on different shards).

   Joins and aggregates are not shard-local in general (join partners
   and group fragments straddle shards), but they still distribute
   through other routes — see [route_complex] below: grouped aggregates
   (GROUP BY, HAVING, AVG included) combine from per-shard
   expiration-slice partials, joins run shard-locally when both sides
   hash on the join key or via a broadcast of the small side, and the
   non-distributable remainder falls back to gathering the base tables
   and computing at the coordinator.  Only genuinely per-node features
   (views, triggers, constraints, CHECKPOINT) stay refused. *)
let rec tuple_preserving = function
  | Ast.Select
      { items = [ Ast.Star ];
        source = Ast.From_table _;
        group_by = [];
        having = None;
        _
      } ->
    true
  | Ast.Select _ -> false
  | Ast.Union (a, b) | Ast.Except (a, b) | Ast.Intersect (a, b) ->
    tuple_preserving a && tuple_preserving b

let rec distributable = function
  | Ast.Select
      { items; source = Ast.From_table _; group_by = []; having = None; _ } ->
    List.for_all
      (function
        | Ast.Agg _ | Ast.Approx_count _ | Ast.Sample _ -> false
        | Ast.Star | Ast.Column _ -> true)
      items
  | Ast.Select _ -> false
  | Ast.Union (a, b) -> distributable a && distributable b
  | Ast.Except (a, b) | Ast.Intersect (a, b) ->
    tuple_preserving a && tuple_preserving b

(* An approximate aggregate served by a sketch.  Shard-decomposability
   is the sketches' defining property: each shard folds its partition
   into a bounded-memory partial and the coordinator merges. *)
let sketchable = function
  | Ast.Select
      { items = [ (Ast.Approx_count _ | Ast.Sample _) ];
        source = Ast.From_table _;
        group_by = [];
        having = None;
        _
      } ->
    true
  | _ -> false

let err message = Wire.Err { code = Wire.Exec_error; message }

(* ---------- scatter-gather ---------- *)

(* Can the coordinator prove, from its cached summary alone, that this
   shard's whole partition is empty at [tau]?  Either nothing was live
   at the last refresh (and only this coordinator inserts, each insert
   refreshing the summary), or everything live then expires by [tau].
   The min-texp bound [Relation.min_texp] lifted to the shard: here the
   dual max bound is the one that proves emptiness. *)
let prunable slot tau =
  match slot.summary with
  | None -> false
  | Some { Wire.live_rows; max_texp; _ } ->
    live_rows = 0 || Time.(max_texp <= tau)

let span_offset_us tr at =
  let us = (at -. Obs.Trace.started_at tr) *. 1e6 in
  if us < 0. then 0 else int_of_float us

(* Merge partial listings under the union rule: per duplicate tuple the
   max texp (Eq (3) of the paper's union), overall texp(e) the min over
   partials — exact for disjoint hash partitions.  Presentation mirrors
   [Interp.order_and_limit]: ORDER BY keys first, full-tuple compare as
   the deterministic tie-break, then LIMIT.  ORDER BY names resolve
   through the same [Lower.order_by_position] the single-node
   presentation path uses — qualified labels, suffix matches and
   ambiguity all behave identically on both paths. *)
let merge_partials ~columns ~order_by ~limit partials =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (rows : (Value.t list * Time.t) list) ->
      List.iter
        (fun (vs, texp) ->
          match Hashtbl.find_opt tbl vs with
          | None ->
            Hashtbl.add tbl vs texp;
            order := vs :: !order
          | Some old -> Hashtbl.replace tbl vs (Time.max old texp))
        rows)
    partials;
  let merged = List.rev_map (fun vs -> (vs, Hashtbl.find tbl vs)) !order in
  let keys =
    List.map (fun (r, d) -> (Lower.order_by_position ~columns r, d)) order_by
  in
  let compare_rows (vs1, _) (vs2, _) =
    let attr vs pos = List.nth vs (pos - 1) in
    let rec go = function
      | [] -> List.compare Value.compare vs1 vs2 (* deterministic tie-break *)
      | (pos, dir) :: rest ->
        let c = Value.compare (attr vs1 pos) (attr vs2 pos) in
        if c <> 0 then
          match dir with
          | Ast.Asc -> c
          | Ast.Desc -> -c
        else go rest
    in
    go keys
  in
  let sorted =
    if order_by = [] then merged else List.stable_sort compare_rows merged
  in
  match limit with
  | None -> sorted
  | Some n -> List.filteri (fun i _ -> i < n) sorted

(* The query's evaluation time: the cluster clock, pushed forward by an
   explicit AT. *)
let query_tau t (qs : Ast.query_stmt) =
  let now = locked t (fun () -> t.now) in
  match qs.Ast.at with
  | Some n -> Time.max now (Time.of_int n)
  | None -> now

(* Fan one request out to [contacted] in parallel, under a [scatter]
   span.  The rpc spans are recorded after the join (a trace is not
   synchronised across threads); offsets and durations are the ones
   measured inside each fan-out thread.  Replies come back in contact
   order. *)
let fan_out ?trace t contacted request =
  Obs.Trace.span trace "scatter" @@ fun () ->
  let results = Array.make (List.length contacted) None in
  let threads =
    List.mapi
      (fun i slot ->
        Thread.create
          (fun () ->
            let t0 = Unix.gettimeofday () in
            let r = send t slot request in
            results.(i) <- Some (slot, r, t0, Unix.gettimeofday ()))
          ())
      contacted
  in
  List.iter Thread.join threads;
  Option.iter
    (fun tr ->
      Array.iter
        (function
          | Some (slot, _, t0, t1) ->
            Obs.Trace.record tr
              ~name:(Printf.sprintf "rpc:shard-%d" slot.shard.Wire.shard_id)
              ~start_us:(span_offset_us tr t0)
              ~duration_us:(int_of_float ((t1 -. t0) *. 1e6))
          | None -> ())
        results)
    trace;
  Array.fold_left
    (fun acc -> function
      | Some (slot, r, _, _) -> (slot, r) :: acc
      | None -> acc)
    [] results
  |> List.rev

(* A shard that died or answered garbage mid-gather: surface one typed
   [Shard_failed] error naming the shard.  Partitions are disjoint, so
   a missing partial means a missing slice of the answer — there is no
   sound way to answer from the surviving shards. *)
let shard_failed slot message =
  Wire.Err
    { code = Wire.Shard_failed;
      message =
        Printf.sprintf "shard %d: %s" slot.shard.Wire.shard_id message
    }

(* Collect [Shard_rows] partials, short-circuiting on the first shard
   error.  An [Err] the shard itself sent passes through untouched (it
   is a statement-level verdict, e.g. a parse error); a transport
   failure or an off-protocol reply becomes [Shard_failed]. *)
let gather_rows partials =
  let rec gather acc = function
    | [] -> Ok (List.rev acc)
    | (_, Ok (Wire.Shard_rows { columns; rows; texp_e; recomputed; _ })) :: rest
      ->
      gather ((columns, rows, texp_e, recomputed) :: acc) rest
    | (_, Ok (Wire.Err _ as e)) :: _ -> Error e
    | (slot, Ok _) :: _ ->
      Error (shard_failed slot "unexpected reply to a query")
    | (slot, Error msg) :: _ -> Error (shard_failed slot msg)
  in
  gather [] partials

(* ---------- cluster horizon ---------- *)

(* Gather every shard's forward expiration forecast and roll it up.
   Hash partitions are disjoint, so each bucket of the merged report is
   a sum of disjoint row counts — bucket-wise addition is the exact
   cluster forecast, not an approximation (the test suite pins
   merged ≡ single-node as a qcheck law).  Never pruned: a shard whose
   partition is empty contributes an all-zero (still correct) partial,
   and the forecast must name every table.  Returns the merged report
   plus the per-shard live-row breakdown. *)
let gather_horizon ?trace ?table t =
  let replies = fan_out ?trace t (slots t) (Wire.Horizon table) in
  let rec gather acc = function
    | [] -> Ok (List.rev acc)
    | (slot, Ok (Wire.Horizon_reply r)) :: rest ->
      gather ((slot, r) :: acc) rest
    | (_, Ok (Wire.Err _ as e)) :: _ -> Error e
    | (slot, Ok _) :: _ ->
      Error (shard_failed slot "unexpected reply to a horizon request")
    | (slot, Error msg) :: _ -> Error (shard_failed slot msg)
  in
  match gather [] replies with
  | Error e -> Error e
  | Ok [] -> Error (err "no shards")
  | Ok parts ->
    let merged = Obs.Horizon.merge_reports (List.map snd parts) in
    (* Only the unfiltered forecast is the cluster-wide one the gauges
       and storm rules should read. *)
    if table = None then
      locked t (fun () -> t.last_horizon <- Some merged);
    let per_shard =
      List.map
        (fun (slot, (r : Obs.Horizon.report)) ->
          ( string_of_int slot.shard.Wire.shard_id,
            List.fold_left (fun acc tb -> acc + Obs.Horizon.live tb) 0
              r.Obs.Horizon.tables ))
        parts
    in
    Ok (merged, per_shard)

let horizon ?table t =
  match gather_horizon ?table t with
  | Ok _ as ok -> ok
  | Error (Wire.Err { message; _ }) -> Error message
  | Error _ -> Error "unexpected reply to a horizon request"

let horizon_page t =
  Result.map
    (fun (report, _) -> Obs.Prometheus.render (Obs.Horizon.metrics report))
    (horizon t)

(* Fan a query out to every shard whose partition can still hold live
   rows at the query's tau, in parallel, and merge.  With every shard
   prunable, one shard is still asked — someone has to name the result
   columns — which still saves n-1 contacts. *)
let scatter_gather ?trace ~prune t (qs : Ast.query_stmt) sql =
  Obs.Instrument.Counter.incr t.fanouts_total;
  let tau = query_tau t qs in
  let all = slots t in
  let contacted, pruned =
    if not prune then (all, [])
    else begin
      match List.partition (fun s -> not (prunable s tau)) all with
      | [], everyone -> ([ List.hd everyone ], List.tl everyone)
      | split -> split
    end
  in
  List.iter
    (fun (_ : slot) -> Obs.Instrument.Counter.incr t.pruned_total)
    pruned;
  let partials =
    fan_out ?trace t contacted (Wire.Exec_shard { sql; ctx = ctx_of trace })
  in
  match gather_rows partials with
  | Error e -> e
  | Ok [] -> err "no shards"
  | Ok ((columns, _, _, _) :: _ as parts) ->
    (match
       merge_partials ~columns ~order_by:qs.Ast.order_by ~limit:qs.Ast.limit
         (List.map (fun (_, rows, _, _) -> rows) parts)
     with
     | listing ->
       Wire.Rows
         { columns;
           rows = listing;
           texp_e = Time.min_list (List.map (fun (_, _, te, _) -> te) parts);
           recomputed = List.exists (fun (_, _, _, r) -> r) parts
         }
     | exception Failure message | exception Lower.Error message ->
       err message)

(* A grouped (or global) exact aggregate, combined from per-shard
   expiration-slice partials.  Every shard evaluates the decomposed
   child over its own partition and condenses it with
   [Partial_agg.of_relation]; the coordinator merges the partials —
   groups unite by key, slices by expiration time, counts/sums add and
   extrema extremise over the disjoint hash partitions — and runs the
   {e same} finalisation a single node fusing the query would run.
   Rows, per-row texps (the union-rule collapse of each group's member
   expirations) and the answer's change point nu therefore come out
   identical to a single node holding all rows.  AVG is exact because
   it never travels as an average: the slices carry its SUM and COUNT
   components and the quotient is taken once, here, at finalisation.
   A shard whose summary proves its partition empty at tau contributes
   a vacuous partial and is pruned from the fan-out entirely — the
   coordinator knows the columns and the finalisation of the merged
   rest is unaffected. *)
let scatter_partial_agg ?trace ~prune t (qs : Ast.query_stmt)
    (d : Lower.decomposed) ~columns ~child_arity sql =
  Obs.Instrument.Counter.incr t.fanouts_total;
  let tau = query_tau t qs in
  let all = slots t in
  let contacted, pruned =
    if not prune then (all, [])
    else List.partition (fun s -> not (prunable s tau)) all
  in
  List.iter
    (fun (_ : slot) -> Obs.Instrument.Counter.incr t.pruned_total)
    pruned;
  let replies =
    fan_out ?trace t contacted (Wire.Agg_shard { sql; ctx = ctx_of trace })
  in
  let rec gather partials texps = function
    | [] -> Ok (List.rev partials, texps)
    | (_, Ok (Wire.Shard_agg { groups; child_texp; _ })) :: rest ->
      gather (groups :: partials) (child_texp :: texps) rest
    | (_, Ok (Wire.Err _ as e)) :: _ -> Error e
    | (slot, Ok _) :: _ ->
      Error (shard_failed slot "unexpected reply to an aggregate request")
    | (slot, Error msg) :: _ -> Error (shard_failed slot msg)
  in
  match gather [] [] replies with
  | Error e -> e
  | Ok (partials, child_texps) ->
    (match
       Expirel_exec.Partial_agg.finalize ~group:d.Lower.d_group
         ~func:d.Lower.d_func ~child_arity ?having:d.Lower.d_having
         ~projection:d.Lower.d_projection
         (Expirel_exec.Partial_agg.merge_all partials)
     with
     | relation, invalidation ->
       let rows =
         List.map
           (fun (tuple, e) -> (Tuple.to_list tuple, e))
           (Relation.to_list relation)
       in
       (match
          merge_partials ~columns ~order_by:qs.Ast.order_by
            ~limit:qs.Ast.limit [ rows ]
        with
        | listing ->
          Wire.Rows
            { columns;
              rows = listing;
              texp_e = Time.min_list (invalidation :: child_texps);
              recomputed = false
            }
        | exception Failure message | exception Lower.Error message ->
          err message)
     | exception Invalid_argument message -> err message)

(* An approximate aggregate: every shard folds its partition into a
   bounded-memory sketch and ships the serialised partial; the
   coordinator merges them — sketches are shard-decomposable by
   construction — and renders rows from the merged sketch at the
   cluster's tau.  AT is applied here, not on the shards: a sketch
   retains the whole expiration axis, so one round of partials answers
   any tau >= now.  The answer's texp(e) is the merged sketch's
   horizon, i.e. the union rule computed in sketch space. *)
let scatter_sketch ?trace t (qs : Ast.query_stmt) sql =
  Obs.Instrument.Counter.incr t.fanouts_total;
  let tau = query_tau t qs in
  let replies =
    fan_out ?trace t (slots t) (Wire.Sketch_shard { sql; ctx = ctx_of trace })
  in
  let rec gather acc = function
    | [] -> Ok (List.rev acc)
    | (_, Ok (Wire.Shard_sketch { columns; payload; _ })) :: rest ->
      gather ((columns, payload) :: acc) rest
    | (_, Ok (Wire.Err _ as e)) :: _ -> Error e
    | (slot, Ok _) :: _ ->
      Error (shard_failed slot "unexpected reply to a sketch request")
    | (slot, Error msg) :: _ -> Error (shard_failed slot msg)
  in
  match gather [] replies with
  | Error e -> e
  | Ok [] -> err "no shards"
  | Ok ((columns, _) :: _ as parts) ->
    let decoded =
      List.fold_left
        (fun acc (_, payload) ->
          match acc with
          | Error _ as e -> e
          | Ok sketches ->
            (match Sketch.Any.of_string payload with
             | Ok s -> Ok (s :: sketches)
             | Error m -> Error m))
        (Ok []) parts
    in
    let merged =
      match decoded with
      | Error _ as e -> e
      | Ok [] -> Error "no sketch partials"
      | Ok (s :: rest) ->
        List.fold_left
          (fun acc s' ->
            match acc with
            | Error _ as e -> e
            | Ok a -> Sketch.Any.merge a s')
          (Ok s) rest
    in
    (match merged with
     | Error message -> err ("sketch partials: " ^ message)
     | Ok sketch ->
       let rows, horizon = Sketch.Any.query_rows ~tau sketch in
       (match
          merge_partials ~columns ~order_by:qs.Ast.order_by
            ~limit:qs.Ast.limit [ rows ]
        with
        | listing ->
          Wire.Rows
            { columns; rows = listing; texp_e = horizon; recomputed = false }
        | exception Failure message | exception Lower.Error message ->
          err message))

(* ---------- routed writes and broadcasts ---------- *)

let unwrap = function
  | Ok (Wire.Shard_rows { columns; rows; texp_e; recomputed; _ }) ->
    Wire.Rows { columns; rows; texp_e; recomputed }
  | Ok (Wire.Shard_ack { message; _ }) -> Wire.Ok_msg message
  | Ok r -> r
  | Error msg -> err msg

let slot_for t shard_id =
  List.find_opt (fun s -> s.shard.Wire.shard_id = shard_id) (slots t)

(* A routed write: exactly one shard — the key's owner — is contacted;
   its ack piggybacks the refreshed summary, so an insert into a shard
   the coordinator believed empty immediately un-prunes it. *)
let route_insert ?trace t ~key sql =
  let owner = Wire.shard_owner (shard_map t) key in
  match slot_for t owner with
  | None -> err (Printf.sprintf "no slot for owner shard %d" owner)
  | Some slot -> unwrap (exec_shard ?trace t slot sql)

(* Broadcast a statement to every shard, sequentially (writes are rare
   and ADVANCE must reach everyone anyway).  The first failure is
   reported with its shard id; there is no cross-shard atomicity —
   cluster v1 trades transactions for the expiration calculus, which
   needs none. *)
let broadcast ?trace t sql ~merge =
  let rec go acc = function
    | [] -> merge (List.rev acc)
    | slot :: rest ->
      (match exec_shard ?trace t slot sql with
       | Ok (Wire.Err { message; _ }) | Error message ->
         err
           (Printf.sprintf "shard %d: %s" slot.shard.Wire.shard_id message)
       | Ok reply -> go ((slot, reply) :: acc) rest)
  in
  go [] (slots t)

let merge_acks replies =
  match replies with
  | (_, Wire.Shard_ack { message; _ }) :: _ ->
    Wire.Ok_msg
      (Printf.sprintf "%s (on %d shard(s))" message (List.length replies))
  | _ -> err "unexpected reply to a broadcast statement"

let merge_texts replies =
  Wire.Ok_msg
    (String.concat "\n"
       (List.map
          (fun (slot, reply) ->
            let body =
              match reply with
              | Wire.Shard_ack { message; _ } -> message
              | other -> Wire.render_response other
            in
            Printf.sprintf "--- shard %d ---\n%s" slot.shard.Wire.shard_id
              body)
          replies))

let forward_to_any ?trace t sql =
  let rec go = function
    | [] -> err "no reachable shard"
    | slot :: rest ->
      (match exec_shard ?trace t slot sql with
       | Ok reply -> unwrap (Ok reply)
       | Error _ -> go rest)
  in
  go (slots t)

(* ---------- distributed joins and the gather fallback ---------- *)

(* The cluster catalog: cached CREATE TABLE columns, lazily recovered
   from a zero-row describe scan (single-table scans label columns with
   their bare DDL names, exactly what shard-side lowering sees) when
   this coordinator did not create the table itself. *)
let table_columns ?trace t name =
  match locked t (fun () -> Hashtbl.find_opt t.tables name) with
  | Some columns -> Some columns
  | None ->
    (match
       forward_to_any ?trace t (Printf.sprintf "SELECT * FROM %s LIMIT 0" name)
     with
     | Wire.Rows { columns; _ } ->
       locked t (fun () -> Hashtbl.replace t.tables name columns);
       Some columns
     | _ -> None)

let coord_catalog ?trace t : Lower.catalog =
 fun name -> table_columns ?trace t name

let cluster_count ?trace t name =
  let replies =
    fan_out ?trace t (slots t)
      (Wire.Exec_shard
         { sql = Printf.sprintf "SELECT COUNT(*) FROM %s" name;
           ctx = ctx_of trace
         })
  in
  match gather_rows replies with
  | Error e -> Error e
  | Ok parts ->
    Ok
      (List.fold_left
         (fun acc (_, rows, _, _) ->
           List.fold_left
             (fun acc (vs, _) ->
               match vs with
               | [ Value.Int n ] -> acc + n
               | _ -> acc)
             acc rows)
         0 parts)

(* A table's complete, cluster-wide contents with per-row texps —
   partitions are disjoint, so plain concatenation is the union. *)
let gather_table_rows ?trace t name =
  let replies =
    fan_out ?trace t (slots t)
      (Wire.Exec_shard
         { sql = Printf.sprintf "SELECT * FROM %s" name; ctx = ctx_of trace })
  in
  match gather_rows replies with
  | Error e -> Error e
  | Ok parts -> Ok (List.concat_map (fun (_, rows, _, _) -> rows) parts)

(* The lowered two-table join under any Project/Select wrappers. *)
let rec find_join = function
  | Algebra.Project (_, e) | Algebra.Select (_, e) -> find_join e
  | Algebra.Join (p, Algebra.Base l, Algebra.Base r) -> Some (p, l, r)
  | _ -> None

(* Rows route to shards by the hash of their first column, so a join
   whose condition equates the two first columns is co-partitioned:
   every pair of join partners shares a hash, hence a shard, and the
   per-shard local joins partition the global one — the ordinary
   scatter-gather of the original statement is exact. *)
let co_partitioned p ~left_arity =
  List.exists
    (function
      | Predicate.Cmp (Predicate.Eq, Predicate.Col 1, Predicate.Col c)
      | Predicate.Cmp (Predicate.Eq, Predicate.Col c, Predicate.Col 1) ->
        c = left_arity + 1
      | _ -> false)
    (Predicate.conjuncts p)

(* Ship at most this many build-side rows to every shard; beyond it the
   coordinator gathers and computes instead of multiplying the traffic
   by the fleet size. *)
let broadcast_limit = 4096

(* Broadcast-side hash join: ship the small side's complete contents to
   every shard, which joins them against its local fragment of the
   other side.  Probe fragments are disjoint, so the union of per-shard
   results is the exact join; a self-join (both sides the same table)
   degenerates to every contacted shard computing the full join, which
   the union-rule merge deduplicates. *)
let scatter_broadcast_join ?trace ~prune t (qs : Ast.query_stmt) ~build_table
    ~build_rows sql =
  Obs.Instrument.Counter.incr t.fanouts_total;
  let tau = query_tau t qs in
  let all = slots t in
  let contacted, pruned =
    if not prune then (all, [])
    else begin
      match List.partition (fun s -> not (prunable s tau)) all with
      | [], everyone -> ([ List.hd everyone ], List.tl everyone)
      | split -> split
    end
  in
  List.iter
    (fun (_ : slot) -> Obs.Instrument.Counter.incr t.pruned_total)
    pruned;
  let replies =
    fan_out ?trace t contacted
      (Wire.Join_shard { sql; build_table; build_rows; ctx = ctx_of trace })
  in
  match gather_rows replies with
  | Error e -> e
  | Ok [] -> err "no shards"
  | Ok ((columns, _, _, _) :: _ as parts) ->
    (match
       merge_partials ~columns ~order_by:qs.Ast.order_by ~limit:qs.Ast.limit
         (List.map (fun (_, rows, _, _) -> rows) parts)
     with
     | listing ->
       Wire.Rows
         { columns;
           rows = listing;
           texp_e = Time.min_list (List.map (fun (_, _, te, _) -> te) parts);
           recomputed = false
         }
     | exception Failure message | exception Lower.Error message ->
       err message)

(* The non-distributable remainder (projected EXCEPT/INTERSECT,
   aggregates over joins, oversized broadcast joins, AT-joins): gather
   every base table's rows, rebuild them in a throwaway single-node
   session synchronised to the cluster clock, and let the full
   single-node engine answer.  Correct for anything it can express —
   the session holds exactly the cluster's live rows with their
   original texps — at the cost of shipping the tables. *)
let rec query_tables = function
  | Ast.Select { Ast.source = Ast.From_table n; _ } -> [ n ]
  | Ast.Select { Ast.source = Ast.From_join (l, r, _); _ } -> [ l; r ]
  | Ast.Union (a, b) | Ast.Except (a, b) | Ast.Intersect (a, b) ->
    query_tables a @ query_tables b

let gather_compute ?trace t (qs : Ast.query_stmt) =
  Obs.Instrument.Counter.incr t.fanouts_total;
  let local = Interp.create () in
  let tables = List.sort_uniq String.compare (query_tables qs.Ast.q) in
  let load =
    List.fold_left
      (fun acc name ->
        match acc with
        | Error _ as e -> e
        | Ok () ->
          (match table_columns ?trace t name with
           | None -> Error (err (Printf.sprintf "unknown table %s" name))
           | Some columns ->
             (match Interp.exec local (Ast.Create_table (name, columns)) with
              | Error m -> Error (err m)
              | Ok _ ->
                (match gather_table_rows ?trace t name with
                 | Error e -> Error e
                 | Ok rows ->
                   List.iter
                     (fun (vs, texp) ->
                       Expirel_storage.Database.insert_values
                         (Interp.database local) name vs ~texp)
                     rows;
                   Ok ()))))
      (Ok ()) tables
  in
  match load with
  | Error e -> e
  | Ok () ->
    let clocked =
      match Time.to_int_opt (locked t (fun () -> t.now)) with
      | Some n when n > 0 ->
        Result.map ignore (Interp.exec local (Ast.Advance_to n))
      | _ -> Ok ()
    in
    (match clocked with
     | Error m -> err m
     | Ok () ->
       (match Interp.exec local (Ast.Query qs) with
        | Ok (Interp.Rows { columns; listing; texp_e; recomputed; _ }) ->
          Wire.Rows
            { columns;
              rows =
                List.map (fun (tp, e) -> (Tuple.to_list tp, e)) listing;
              texp_e;
              recomputed
            }
        | Ok (Interp.Msg m) -> Wire.Ok_msg m
        | Error m -> err m))

let broadcast_join ?trace ~prune t (qs : Ast.query_stmt)
    (compiled : Lower.compiled) sql =
  match find_join compiled.Lower.expr with
  | None -> gather_compute ?trace t qs
  | Some (_, l, r) ->
    (match cluster_count ?trace t l, cluster_count ?trace t r with
     | Error e, _ | _, Error e -> e
     | Ok nl, Ok nr ->
       if min nl nr > broadcast_limit then gather_compute ?trace t qs
       else
         let build = if nl <= nr then l else r in
         (match gather_table_rows ?trace t build with
          | Error e -> e
          | Ok build_rows ->
            scatter_broadcast_join ?trace ~prune t qs ~build_table:build
              ~build_rows sql))

(* Route a query none of the shard-local strategies covers.  In order:
   grouped aggregates that decompose into per-shard slice partials;
   two-table joins — shard-local scatter when co-partitioned on the
   join key, broadcast of the small side otherwise; and the
   gather-then-compute fallback for everything else. *)
let route_complex ?trace ~prune t (qs : Ast.query_stmt) sql =
  match Lower.lower_query ~catalog:(coord_catalog ?trace t) qs.Ast.q with
  | exception Lower.Error message -> err message
  | compiled ->
    (match Lower.decompose compiled with
     | Some d ->
       let child_arity =
         match d.Lower.d_child with
         | Algebra.Base name | Algebra.Select (_, Algebra.Base name) ->
           (match table_columns ?trace t name with
            | Some columns -> List.length columns
            | None -> 0)
         | _ -> 0
       in
       scatter_partial_agg ?trace ~prune t qs d
         ~columns:compiled.Lower.columns ~child_arity sql
     | None ->
       (match qs.Ast.q with
        | Ast.Select
            { source = Ast.From_join (l, _, _);
              group_by = [];
              having = None;
              items;
              _
            }
          when List.for_all
                 (function
                   | Ast.Star | Ast.Column _ -> true
                   | Ast.Agg _ | Ast.Approx_count _ | Ast.Sample _ -> false)
                 items ->
          (match find_join compiled.Lower.expr with
           | Some (p, _, _) ->
             let left_arity =
               match table_columns ?trace t l with
               | Some columns -> List.length columns
               | None -> 0
             in
             if left_arity > 0 && co_partitioned p ~left_arity then
               scatter_gather ?trace ~prune t qs sql
             else if qs.Ast.at <> None then
               (* a broadcast join evaluates at the shards' now; a
                  future AT needs the snapshot semantics only the
                  gathered evaluation provides *)
               gather_compute ?trace t qs
             else broadcast_join ?trace ~prune t qs compiled sql
           | None -> gather_compute ?trace t qs)
        | _ -> gather_compute ?trace t qs))

(* ---------- the statement entry point ---------- *)

let advance_clock t target = locked t (fun () -> t.now <- Time.max t.now target)

let exec_parsed ?trace ~prune t stmt sql =
  match stmt with
  | Ast.Query qs ->
    if distributable qs.Ast.q then scatter_gather ?trace ~prune t qs sql
    else if sketchable qs.Ast.q then scatter_sketch ?trace t qs sql
    else route_complex ?trace ~prune t qs sql
  | Ast.Insert { values = key :: _; _ } -> route_insert ?trace t ~key sql
  | Ast.Insert { values = []; _ } -> err "INSERT needs at least one value"
  | Ast.Advance_to n ->
    let r = broadcast ?trace t sql ~merge:merge_acks in
    (match r with
     | Wire.Ok_msg _ -> advance_clock t (Time.of_int n)
     | _ -> ());
    r
  | Ast.Tick n ->
    let r = broadcast ?trace t sql ~merge:merge_acks in
    (match r with
     | Wire.Ok_msg _ ->
       locked t (fun () -> t.now <- Time.add t.now (Time.of_int n))
     | _ -> ());
    r
  | Ast.Create_table (name, columns) ->
    let r = broadcast ?trace t sql ~merge:merge_acks in
    (match r with
     | Wire.Ok_msg _ ->
       locked t (fun () -> Hashtbl.replace t.tables name columns)
     | _ -> ());
    r
  | Ast.Drop_table name ->
    let r = broadcast ?trace t sql ~merge:merge_acks in
    (match r with
     | Wire.Ok_msg _ -> locked t (fun () -> Hashtbl.remove t.tables name)
     | _ -> ());
    r
  | Ast.Create_index _ | Ast.Drop_index _ | Ast.Delete _ | Ast.Vacuum ->
    broadcast ?trace t sql ~merge:merge_acks
  | Ast.Explain _ | Ast.Explain_analyze _ ->
    broadcast ?trace t sql ~merge:merge_texts
  | Ast.Show_tables | Ast.Show_time -> forward_to_any ?trace t sql
  | Ast.Show_horizon table ->
    (match gather_horizon ?trace ?table t with
     | Error e -> e
     | Ok (merged, per_shard) ->
       Wire.Ok_msg (Obs.Horizon.render ~per_shard merged))
  | Ast.Checkpoint | Ast.Create_view _ | Ast.Show_view _ | Ast.Show_views
  | Ast.Refresh_view _ | Ast.Create_trigger _ | Ast.Drop_trigger _
  | Ast.Show_triggers | Ast.Create_constraint _ | Ast.Drop_constraint _
  | Ast.Show_constraints ->
    err
      "unsupported in cluster mode (views, triggers, constraints and \
       CHECKPOINT are per-node features; address a shard directly)"

(* Every statement is traced like a server request: parse at the
   coordinator, fan out under a [scatter] span with the context
   shipped, finish into the coordinator's trace store. *)
let exec ?(prune = true) ?trace:caller_trace t sql =
  let tr =
    match caller_trace with
    | Some tr -> tr
    | None -> Obs.Trace.create ()
  in
  let trace = Some tr in
  let response =
    match
      Obs.Trace.span trace "parse" (fun () -> Parser.parse_statement sql)
    with
    | stmt -> exec_parsed ?trace ~prune t stmt sql
    | exception Parser.Error (message, off) ->
      Wire.Err
        { code = Wire.Parse_error;
          message = Printf.sprintf "at offset %d: %s" off message
        }
  in
  if Option.is_none caller_trace then
    Obs.Trace_store.finish t.trace_store ~node:t.node_name ~name:sql tr;
  response

let query = exec

(* ---------- heartbeat ---------- *)

let heartbeat_now t =
  List.iter (fun slot -> ignore (send t slot Wire.Shard_ping)) (slots t)

let rec heartbeat_loop t =
  if not t.stopping then begin
    Thread.delay t.heartbeat_interval;
    if not t.stopping then begin
      heartbeat_now t;
      heartbeat_loop t
    end
  end

(* ---------- construction ---------- *)

let make_slot t (shard : Wire.shard) =
  { shard;
    member =
      Member.create
        { host = shard.Wire.shard_host; port = shard.Wire.shard_port };
    slot_lock = Mutex.create ();
    requests =
      Obs.Instrument.Family.labelled t.requests_family
        [ string_of_int shard.Wire.shard_id ];
    summary = None;
    map_version_seen = 0;
    reachable = false;
  }

let on_slot slot f =
  Mutex.lock slot.slot_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock slot.slot_lock)
    (fun () -> Member.on slot.member f)

let install_on slot map =
  match
    on_slot slot (fun c ->
        Client.shard_install c ~map ~self_id:slot.shard.Wire.shard_id)
  with
  | Ok () ->
    slot.reachable <- true;
    slot.map_version_seen <- map.Wire.map_version;
    Ok ()
  | Error e ->
    slot.reachable <- false;
    Error e

let create ?(node_name = "coordinator") ?health_rules
    ?(heartbeat_interval = 0.25) ~shards:endpoints () =
  (match endpoints with
   | [] -> invalid_arg "Coordinator.create: no shards"
   | _ -> ());
  let map =
    { Wire.map_version = 1;
      shards =
        List.mapi
          (fun i (e : endpoint) ->
            { Wire.shard_id = i; shard_host = e.host; shard_port = e.port })
          endpoints
    }
  in
  let registry = Obs.Registry.create () in
  let t =
    { node_name;
      registry;
      trace_store = Obs.Trace_store.create ();
      health_rules =
        Option.value health_rules
          ~default:(default_health_rules ~shards:(List.length endpoints));
      requests_family =
        Obs.Registry.counter_family registry
          ~name:"expirel_cluster_shard_requests_total"
          ~help:"Requests routed to each shard" ~labels:[ "shard" ];
      pruned_total =
        Obs.Registry.counter registry
          ~name:"expirel_cluster_pruned_shards_total"
          ~help:"Shards skipped from a fan-out because their cached \
                 partition summary proved them empty at the query's tau";
      fanouts_total =
        Obs.Registry.counter registry ~name:"expirel_cluster_fanouts_total"
          ~help:"Scatter-gather queries executed";
      messages_total =
        Obs.Registry.counter registry ~name:"expirel_cluster_messages_total"
          ~help:"Coordinator-to-shard requests sent";
      bytes_sent_total =
        Obs.Registry.counter registry
          ~name:"expirel_cluster_bytes_sent_total"
          ~help:"Bytes of encoded requests sent to shards (framing \
                 included)";
      bytes_received_total =
        Obs.Registry.counter registry
          ~name:"expirel_cluster_bytes_received_total"
          ~help:"Bytes of encoded replies received from shards (framing \
                 included)";
      state = Mutex.create ();
      tables = Hashtbl.create 16;
      map;
      slots = [];
      now = Time.zero;
      last_health = Obs.Health.Ok;
      last_horizon = None;
      hb_thread = None;
      stopping = false;
      heartbeat_interval
    }
  in
  Obs.Registry.gauge_fun registry ~name:"expirel_cluster_shard_map_version"
    ~help:"Version of the shard map this coordinator routes by" (fun () ->
      float_of_int (shard_map t).Wire.map_version);
  Obs.Registry.gauge_fun registry ~name:"expirel_cluster_shards"
    ~help:"Shards in the current map" (fun () ->
      float_of_int (List.length (slots t)));
  Obs.Registry.gauge_fun registry ~name:"expirel_cluster_unreachable_shards"
    ~help:"Shards that did not answer their last contact or heartbeat"
    (fun () ->
      float_of_int
        (List.length (List.filter (fun s -> not s.reachable) (slots t))));
  Obs.Registry.gauge_fun registry ~name:"expirel_cluster_stale_shards"
    ~help:"Shards whose last answer reported an older shard-map version"
    (fun () ->
      let v = (shard_map t).Wire.map_version in
      float_of_int
        (List.length
           (List.filter (fun s -> s.map_version_seen < v) (slots t))));
  Obs.Registry.gauge_fun registry ~name:"expirel_cluster_health_status"
    ~help:"Last HEALTH verdict (0 = ok, 1 = degraded, 2 = critical)"
    (fun () ->
      match t.last_health with
      | Obs.Health.Ok -> 0.
      | Obs.Health.Degraded -> 1.
      | Obs.Health.Critical -> 2.);
  (* Cluster-horizon gauges read the cached merged forecast — a scrape
     never fans out.  While no forecast has been gathered yet the
     callbacks raise, which the registry renders as an absent metric
     (and the storm rules therefore skip, not fire). *)
  let cached () =
    match locked t (fun () -> t.last_horizon) with
    | Some r -> r
    | None -> raise Not_found
  in
  Obs.Registry.gauge_fun registry ~name:"expirel_cluster_live_rows"
    ~help:"Live rows across the cluster at the last horizon gather"
    (fun () ->
      let r = cached () in
      float_of_int
        (List.fold_left (fun acc tb -> acc + Obs.Horizon.live tb) 0
           r.Obs.Horizon.tables));
  Obs.Registry.gauge_fun registry
    ~name:"expirel_cluster_horizon_expiring_soon"
    ~help:"Live rows across the cluster expiring within the forecast \
           window, from the last horizon gather"
    (fun () ->
      let r = cached () in
      float_of_int
        (List.fold_left
           (fun acc tb -> acc + Obs.Horizon.expiring_within tb r.Obs.Horizon.window)
           0 r.Obs.Horizon.tables));
  Obs.Registry.gauge_fun registry
    ~name:"expirel_cluster_horizon_fanout_events"
    ~help:"Subscription events the next ADVANCE window delivers across \
           the cluster, from the last horizon gather"
    (fun () -> float_of_int (cached ()).Obs.Horizon.fanout_events);
  Metrics.register_build_info registry;
  t.slots <- List.map (make_slot t) map.Wire.shards;
  (* Nodes may carry a map from an earlier coordinator (a previous
     [cluster connect], a rebalance): claim with a version above
     anything installed, or every install would be refused as stale. *)
  let installed_version =
    List.fold_left
      (fun acc slot ->
        match on_slot slot Client.shard_map with
        | Ok (Some { Wire.installed_map; _ }) ->
          max acc installed_map.Wire.map_version
        | Ok None | Error _ -> acc)
      0 t.slots
  in
  let map =
    if installed_version >= map.Wire.map_version then begin
      let map = { map with Wire.map_version = installed_version + 1 } in
      locked t (fun () -> t.map <- map);
      map
    end
    else map
  in
  List.iter (fun slot -> ignore (install_on slot map)) t.slots;
  (* Prime the clock mirror and the summaries. *)
  heartbeat_now t;
  if heartbeat_interval > 0. then
    t.hb_thread <- Some (Thread.create (fun () -> heartbeat_loop t) ());
  t

let close t =
  t.stopping <- true;
  (match t.hb_thread with
   | Some th ->
     t.hb_thread <- None;
     Thread.join th
   | None -> ());
  List.iter (fun slot -> Member.close slot.member) (slots t)

(* ---------- observability surface ---------- *)

let metrics t = Obs.Prometheus.render (Obs.Registry.collect t.registry)

let wire_health_level = function
  | Obs.Health.Ok -> Wire.Health_ok
  | Obs.Health.Degraded -> Wire.Health_degraded
  | Obs.Health.Critical -> Wire.Health_critical

let health t =
  (* Refresh the horizon cache first so the predictive storm rules read
     the present forecast, not a stale one; an unreachable fleet leaves
     the cache as it was (the rules then skip or read old evidence,
     while the reachability rules fire). *)
  (match gather_horizon t with Ok _ | Error _ -> ());
  let report =
    Obs.Health.evaluate t.health_rules (Obs.Registry.collect t.registry)
  in
  t.last_health <- report.Obs.Health.level;
  ( wire_health_level report.Obs.Health.level,
    List.map
      (fun (f : Obs.Health.firing) ->
        { Wire.rule_name = f.rule_name;
          observed = f.value;
          firing_level = wire_health_level f.level;
          rule_help = f.help
        })
      report.Obs.Health.firing )

let trace_store t = t.trace_store

let wire_trace_entry (e : Obs.Trace_store.entry) =
  { Wire.node = e.node;
    entry_trace_id = e.trace_id;
    entry_name = e.name;
    started_at = e.started_at;
    entry_total_us = e.total_us;
    entry_spans = Metrics.wire_spans e.spans
  }

(* The cluster-wide trace view: this coordinator's entries merged with
   every shard's recent entries, newest first — one trace id read here
   shows the coordinator lane plus a lane per contacted shard. *)
let recent_traces t n =
  let own = List.map wire_trace_entry (Obs.Trace_store.recent t.trace_store n) in
  let remote =
    List.concat_map
      (fun slot ->
        Mutex.lock slot.slot_lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock slot.slot_lock)
          (fun () ->
            match Member.on slot.member (fun c -> Client.traces c n) with
            | Ok entries -> entries
            | Error _ -> []))
      (slots t)
  in
  List.stable_sort
    (fun (a : Wire.trace_entry) b -> Float.compare b.started_at a.started_at)
    (own @ remote)

let traffic t =
  { fanouts = Obs.Instrument.Counter.value t.fanouts_total;
    pruned = Obs.Instrument.Counter.value t.pruned_total;
    messages = Obs.Instrument.Counter.value t.messages_total;
    bytes_sent = Obs.Instrument.Counter.value t.bytes_sent_total;
    bytes_received = Obs.Instrument.Counter.value t.bytes_received_total
  }

let summaries t =
  List.map
    (fun s -> (s.shard.Wire.shard_id, s.summary, s.reachable))
    (slots t)

(* ---------- rebalancing ---------- *)

let table_names t =
  match forward_to_any t "SHOW TABLES" with
  | Wire.Ok_msg "(no tables)" -> Ok []
  | Wire.Ok_msg text -> Ok (String.split_on_char '\n' text)
  | Wire.Err { message; _ } -> Error message
  | _ -> Error "unexpected reply to SHOW TABLES"

(* Move every row to its owner under [new_map]: install everywhere,
   extract per source shard, ingest at the destinations, then purge the
   sources.  Purge runs last so a crash mid-move duplicates rows (both
   copies carry the same texp — harmless to set semantics) rather than
   losing them. *)
let apply_map t new_map ~old_slots ~new_slots =
  let ( let* ) = Result.bind in
  let* () =
    List.fold_left
      (fun acc slot ->
        let* () = acc in
        match install_on slot new_map with
        | Ok () -> Ok ()
        | Error e ->
          Error
            (Printf.sprintf "install on shard %d: %s"
               slot.shard.Wire.shard_id e))
      (Ok ())
      (old_slots
      @ List.filter
          (fun s ->
            not
              (List.exists
                 (fun o -> o.shard.Wire.shard_id = s.shard.Wire.shard_id)
                 old_slots))
          new_slots)
  in
  let* tables = table_names t in
  let moved = ref 0 in
  let* () =
    List.fold_left
      (fun acc source ->
        let* () = acc in
        List.fold_left
          (fun acc table ->
            let* () = acc in
            let* moves =
              Result.map_error
                (Printf.sprintf "extract from shard %d: %s"
                   source.shard.Wire.shard_id)
                (on_slot source (fun c -> Client.extract_moving c table))
            in
            let* () =
              List.fold_left
                (fun acc (owner, rows) ->
                  let* () = acc in
                  match
                    List.find_opt
                      (fun s -> s.shard.Wire.shard_id = owner)
                      new_slots
                  with
                  | None ->
                    Error (Printf.sprintf "no slot for owner shard %d" owner)
                  | Some dest ->
                    moved := !moved + List.length rows;
                    Result.map_error
                      (Printf.sprintf "ingest into shard %d: %s" owner)
                      (Result.map ignore
                         (on_slot dest (fun c ->
                              Client.ingest_rows c ~table rows))))
                (Ok ()) moves
            in
            match moves with
            | [] -> Ok ()
            | _ :: _ ->
              Result.map_error
                (Printf.sprintf "purge on shard %d: %s"
                   source.shard.Wire.shard_id)
                (Result.map ignore
                   (on_slot source (fun c -> Client.purge_moved c table))))
          (Ok ()) tables)
      (Ok ()) old_slots
  in
  locked t (fun () ->
      t.map <- new_map;
      t.slots <- new_slots);
  (* A map change redefines every partition, so every cached summary is
     about the wrong partition now: forget them all (unknown is never
     pruned) and re-prime with a heartbeat round. *)
  List.iter (fun s -> s.summary <- None) new_slots;
  heartbeat_now t;
  List.iter
    (fun s ->
      if
        not
          (List.exists
             (fun n -> n.shard.Wire.shard_id = s.shard.Wire.shard_id)
             new_slots)
      then Member.close s.member)
    old_slots;
  Ok !moved

let add_shard t endpoint =
  let old_map = shard_map t in
  let old_slots = slots t in
  let fresh_id =
    1
    + List.fold_left
        (fun acc (s : Wire.shard) -> max acc s.shard_id)
        (-1) old_map.Wire.shards
  in
  let new_map =
    { Wire.map_version = old_map.Wire.map_version + 1;
      shards =
        old_map.Wire.shards
        @ [ { Wire.shard_id = fresh_id;
              shard_host = endpoint.host;
              shard_port = endpoint.port
            }
          ]
    }
  in
  let new_slots =
    old_slots
    @ [ make_slot t
          { Wire.shard_id = fresh_id;
            shard_host = endpoint.host;
            shard_port = endpoint.port
          }
      ]
  in
  (* The joining shard needs the cluster's catalog and clock before it
     can ingest: recover each table's columns from a zero-row scan on a
     live shard (single-table scans label columns with their bare DDL
     names), replay CREATE TABLE on the newcomer, then sync its clock
     so ingested expiration times mean the same thing there. *)
  let newcomer = List.nth new_slots (List.length new_slots - 1) in
  let prep =
    let ( let* ) = Result.bind in
    let* tables = table_names t in
    let* () =
      List.fold_left
        (fun acc table ->
          let* () = acc in
          match
            forward_to_any t (Printf.sprintf "SELECT * FROM %s LIMIT 0" table)
          with
          | Wire.Rows { columns; _ } ->
            (match
               exec_shard t newcomer
                 (Printf.sprintf "CREATE TABLE %s (%s)" table
                    (String.concat ", " columns))
             with
             | Ok (Wire.Shard_ack _) -> Ok ()
             | Ok (Wire.Err { message; _ }) | Error message ->
               Error
                 (Printf.sprintf "create %s on joining shard: %s" table
                    message)
             | Ok _ -> Error "unexpected reply to CREATE TABLE")
          | Wire.Err { message; _ } ->
            Error (Printf.sprintf "describe %s: %s" table message)
          | _ -> Error "unexpected reply to a describe scan")
        (Ok ()) tables
    in
    match Time.to_int_opt (locked t (fun () -> t.now)) with
    | Some n when n > 0 ->
      (match exec_shard t newcomer (Printf.sprintf "ADVANCE TO %d" n) with
       | Ok (Wire.Shard_ack _) -> Ok ()
       | Ok (Wire.Err { message; _ }) | Error message ->
         Error (Printf.sprintf "clock sync on joining shard: %s" message)
       | Ok _ -> Error "unexpected reply to ADVANCE TO")
    | _ -> Ok ()
  in
  match prep with
  | Error e -> Error e
  | Ok () ->
    (match apply_map t new_map ~old_slots ~new_slots with
     | Ok moved ->
       Ok
         (Printf.sprintf "shard %d joined (map v%d, %d row(s) moved)" fresh_id
            new_map.Wire.map_version moved)
     | Error e -> Error e)

let remove_shard t shard_id =
  let old_map = shard_map t in
  let old_slots = slots t in
  if not (List.exists (fun (s : Wire.shard) -> s.shard_id = shard_id) old_map.Wire.shards)
  then Error (Printf.sprintf "no shard %d in the map" shard_id)
  else if List.length old_map.Wire.shards <= 1 then
    Error "cannot remove the last shard"
  else begin
    let new_map =
      { Wire.map_version = old_map.Wire.map_version + 1;
        shards =
          List.filter
            (fun (s : Wire.shard) -> s.shard_id <> shard_id)
            old_map.Wire.shards
      }
    in
    let new_slots =
      List.filter (fun s -> s.shard.Wire.shard_id <> shard_id) old_slots
    in
    match apply_map t new_map ~old_slots ~new_slots with
    | Ok moved ->
      Ok
        (Printf.sprintf "shard %d left (map v%d, %d row(s) moved)" shard_id
           new_map.Wire.map_version moved)
    | Error e -> Error e
  end
