(* Replication: WAL shipping end to end.

   Three layers of coverage.  Unit tests pin the [Durable] shipping
   surface (positions monotone across checkpoints and reopens, the
   Records/Snapshot/Error trichotomy of [ship_from], [reset_to]).  A
   QCheck property drives a primary through random workloads — including
   ADVANCE and DELETE — and checks that a follower replaying the shipped
   stream holds {e exactly} the primary's state at every position it
   syncs to, over both the record path and the snapshot-bootstrap path.
   Live tests then run real sockets: a primary and two replicas
   converging, expiration-exact replica reads, kill/restart catch-up
   from the persisted position, checkpoints that do not strand
   followers, and the v1-client version-mismatch answer. *)

open Expirel_core
open Expirel_storage
open Expirel_server
open Expirel_repl

let fin = Time.of_int

let with_temp_dir f =
  let dir = Filename.temp_dir "expirel" "repl" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun file -> Sys.remove (Filename.concat dir file))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let with_temp_dirs2 f =
  with_temp_dir (fun a -> with_temp_dir (fun b -> f a b))

let db_state db =
  List.map (fun name -> name, Database.snapshot db name) (Database.table_names db)

let check_same_state msg a b =
  Alcotest.(check bool) (msg ^ ": clocks") true
    (Time.equal (Database.now a) (Database.now b));
  Alcotest.(check (list string)) (msg ^ ": tables")
    (Database.table_names a) (Database.table_names b);
  List.iter2
    (fun (name, ra) (_, rb) ->
      Alcotest.(check bool) (msg ^ ": contents of " ^ name) true
        (Relation.equal ra rb))
    (db_state a) (db_state b)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

(* An execution that must not even return a wire-level error. *)
let ok_response r =
  match ok r with
  | Wire.Err { message; _ } -> Alcotest.fail message
  | (_ : Wire.response) -> ()

(* ---------- Durable: positions and shipping ---------- *)

let populate t =
  Durable.create_table t ~name:"pol" ~columns:[ "uid"; "deg" ];
  Durable.insert t "pol" (Tuple.ints [ 1; 25 ]) ~texp:(fin 10);
  Durable.insert t "pol" (Tuple.ints [ 2; 25 ]) ~texp:(fin 15);
  Durable.advance_to t (fin 4)

let test_position_monotone () =
  with_temp_dir (fun dir ->
      let t = Durable.open_dir dir in
      populate t;
      Alcotest.(check int) "one position per record" 4 (Durable.position t);
      let before = Durable.position t in
      let (_ : int) = Durable.checkpoint t in
      Alcotest.(check int) "checkpoint moves no positions" before
        (Durable.position t);
      Alcotest.(check int) "snapshot base recorded" before
        (Durable.snapshot_position t);
      Durable.insert t "pol" (Tuple.ints [ 3; 35 ]) ~texp:(fin 20);
      Alcotest.(check int) "positions continue past checkpoint" (before + 1)
        (Durable.position t);
      Durable.close t;
      let reopened = Durable.open_dir dir in
      Alcotest.(check int) "position survives reopen" (before + 1)
        (Durable.position reopened);
      Durable.close reopened)

let test_ship_from () =
  with_temp_dir (fun dir ->
      let t = Durable.open_dir dir in
      populate t;
      (* A caught-up follower gets an empty record batch. *)
      (match Durable.ship_from t (Durable.position t) with
       | Ok (Durable.Records []) -> ()
       | _ -> Alcotest.fail "caught-up follower should get Records []");
      (* A cold follower within retention gets the whole stream. *)
      (match Durable.ship_from t 0 with
       | Ok (Durable.Records records) ->
         Alcotest.(check int) "full stream" (Durable.position t)
           (List.length records)
       | _ -> Alcotest.fail "cold follower within retention gets records");
      (* A follower from the future followed a different history. *)
      (match Durable.ship_from t (Durable.position t + 1) with
       | Error _ -> ()
       | Ok _ -> Alcotest.fail "position beyond the log must be an error");
      (match Durable.ship_from t (-1) with
       | Error _ -> ()
       | Ok _ -> Alcotest.fail "negative position must be an error");
      Durable.close t)

let test_ship_snapshot_beyond_retention () =
  with_temp_dir (fun dir ->
      let t = Durable.open_dir ~retention:2 dir in
      populate t;
      (* Retention 2 after 4 records: position 0 predates the tail. *)
      (match Durable.ship_from t 0 with
       | Ok (Durable.Snapshot { position; records }) ->
         Alcotest.(check int) "snapshot is at the head" (Durable.position t)
           position;
         (* The snapshot replays to the live state. *)
         with_temp_dir (fun dir2 ->
             let follower = Durable.open_dir dir2 in
             Durable.reset_to follower ~position records;
             Alcotest.(check int) "follower adopts the position" position
               (Durable.position follower);
             check_same_state "snapshot bootstrap" (Durable.database t)
               (Durable.database follower);
             Durable.close follower)
       | Ok (Durable.Records _) ->
         Alcotest.fail "position behind the retained tail must snapshot"
       | Error e -> Alcotest.fail e);
      (* ...while a follower inside the tail still streams records. *)
      (match Durable.ship_from t (Durable.position t - 2) with
       | Ok (Durable.Records records) ->
         Alcotest.(check int) "tail records" 2 (List.length records)
       | _ -> Alcotest.fail "follower inside the tail gets records");
      Durable.close t)

let test_checkpoint_keeps_tail () =
  with_temp_dir (fun dir ->
      let t = Durable.open_dir dir in
      populate t;
      let (_ : int) = Durable.checkpoint t in
      (* The retained tail survives the checkpoint: a follower from
         before it still gets records, not a snapshot. *)
      (match Durable.ship_from t 0 with
       | Ok (Durable.Records records) ->
         Alcotest.(check int) "tail survives checkpoint" 4 (List.length records)
       | _ -> Alcotest.fail "checkpoint must not strand followers");
      Durable.close t)

(* ---------- property: shipped prefix == primary state ---------- *)

type op =
  | Create of string
  | Drop of string
  | Insert of string * int * int  (* table, value, ttl *)
  | Delete of string * int
  | Advance of int  (* delta in ticks *)

let table_name = QCheck2.Gen.oneofl [ "a"; "b"; "c" ]

let op_gen : op QCheck2.Gen.t =
  let open QCheck2.Gen in
  frequency
    [ 2, map (fun n -> Create n) table_name;
      1, map (fun n -> Drop n) table_name;
      6, map3 (fun n v ttl -> Insert (n, v, ttl)) table_name (int_range 0 5)
           (int_range 1 8);
      2, map2 (fun n v -> Delete (n, v)) table_name (int_range 0 5);
      3, map (fun d -> Advance d) (int_range 0 3) ]

let workload = QCheck2.Gen.(list_size (int_range 1 40) op_gen)

(* Applies an op to the primary if it is valid there (invalid ops — a
   CREATE of an existing table, an INSERT into a missing one — never
   reach the log, so they are simply skipped). *)
let apply_op primary op =
  let db = Durable.database primary in
  let now () = Option.value (Time.to_int_opt (Database.now db)) ~default:0 in
  match op with
  | Create name ->
    if Database.table db name = None then
      Durable.create_table primary ~name ~columns:[ "v" ]
  | Drop name -> ignore (Durable.drop_table primary name)
  | Insert (name, v, ttl) ->
    if Database.table db name <> None then
      Durable.insert primary name (Tuple.ints [ v ]) ~texp:(fin (now () + ttl))
  | Delete (name, v) ->
    if Database.table db name <> None then
      ignore (Durable.delete primary name (Tuple.ints [ v ]))
  | Advance d -> Durable.advance_to primary (fin (now () + d))

let states_equal a b =
  Time.equal (Database.now a) (Database.now b)
  && Database.table_names a = Database.table_names b
  && List.for_all2
       (fun (_, ra) (_, rb) -> Relation.equal ra rb)
       (db_state a) (db_state b)

(* Drives a primary through the workload, syncing a follower via
   [ship_from]/[apply_record]/[reset_to] every [sync_every] ops; the
   follower must hold the primary's exact state at every sync point.
   [retention] small + sparse syncs forces the snapshot path. *)
let follower_converges ~retention ~sync_every ops =
  with_temp_dirs2 (fun pdir fdir ->
      let primary = Durable.open_dir ~retention pdir in
      let follower = Durable.open_dir fdir in
      let sync () =
        match Durable.ship_from primary (Durable.position follower) with
        | Ok (Durable.Records records) ->
          List.iter (Durable.apply_record follower) records
        | Ok (Durable.Snapshot { position; records }) ->
          Durable.reset_to follower ~position records
        | Error e -> failwith e
      in
      let converged = ref true in
      List.iteri
        (fun i op ->
          apply_op primary op;
          if (i + 1) mod sync_every = 0 then begin
            sync ();
            converged :=
              !converged
              && Durable.position follower = Durable.position primary
              && states_equal (Durable.database primary)
                   (Durable.database follower)
          end)
        ops;
      sync ();
      let final =
        states_equal (Durable.database primary) (Durable.database follower)
      in
      Durable.close primary;
      Durable.close follower;
      !converged && final)

let prop_replay_prefix_records =
  Generators.qtest "replaying the shipped stream tracks the primary exactly"
    ~count:100 workload
    (follower_converges ~retention:4096 ~sync_every:1)

let prop_replay_snapshot_path =
  Generators.qtest
    "a follower stranded past retention converges via snapshot bootstrap"
    ~count:100 workload
    (follower_converges ~retention:3 ~sync_every:7)

(* ---------- live: sockets, replicas, failures ---------- *)

let config ?data_dir ?(read_only = false) () =
  { Server.default_config with
    Server.host = "127.0.0.1";
    port = 0;
    data_dir;
    read_only
  }

let with_primary dir f =
  let server = Server.create ~config:(config ~data_dir:dir ()) () in
  Server.start server;
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () -> f server (Server.port server))

let with_replica ~primary_port dir f =
  let replica =
    Replica.create ~data_dir:dir ~primary_host:"127.0.0.1" ~primary_port ()
  in
  Replica.start replica;
  Fun.protect ~finally:(fun () -> Replica.stop replica) (fun () -> f replica)

let with_client port f =
  let client = Client.connect ~host:"127.0.0.1" ~port () in
  Fun.protect ~finally:(fun () -> Client.close client) (fun () -> f client)

let primary_position server =
  match Server.store server with
  | Some store -> Durable.position store
  | None -> Alcotest.fail "primary has no store"

let synced server replica =
  if not (Replica.wait_for_position replica (primary_position server)) then
    Alcotest.fail "replica did not catch up in time"

let rows_of = function
  | Wire.Rows { rows; _ } ->
    List.sort compare (List.map (fun (row, texp) -> row, texp) rows)
  | r -> Alcotest.fail ("expected rows, got " ^ Wire.render_response r)

let query_rows port sql =
  with_client port (fun c -> rows_of (ok (Client.exec c sql)))

let test_two_replicas_converge () =
  with_temp_dir (fun pdir ->
      with_temp_dirs2 (fun rdir1 rdir2 ->
          with_primary pdir (fun server port ->
              with_replica ~primary_port:port rdir1 (fun r1 ->
                  with_replica ~primary_port:port rdir2 (fun r2 ->
                      with_client port (fun c ->
                          ok (Client.exec_ok c "CREATE TABLE pol (uid, deg)");
                          ok (Client.exec_ok c
                                "INSERT INTO pol VALUES (1, 25) EXPIRES 10");
                          ok (Client.exec_ok c
                                "INSERT INTO pol VALUES (2, 25) EXPIRES 15");
                          ok (Client.exec_ok c
                                "INSERT INTO pol VALUES (3, 35) EXPIRES 20");
                          ok (Client.exec_ok c "ADVANCE TO 12"));
                      synced server r1;
                      synced server r2;
                      let sql = "SELECT uid, deg FROM pol" in
                      let expect = query_rows port sql in
                      Alcotest.(check int) "expiration happened" 2
                        (List.length expect);
                      List.iter
                        (fun r ->
                          Alcotest.(check bool)
                            "replica reads equal primary reads" true
                            (query_rows (Replica.port r) sql = expect))
                        [ r1; r2 ];
                      (* Replica STATS carries the replication section. *)
                      with_client (Replica.port r1) (fun c ->
                          match (ok (Client.stats c)).Wire.repl with
                          | Some repl ->
                            Alcotest.(check bool) "role is replica" true
                              (repl.Wire.role = Wire.Replica);
                            Alcotest.(check int) "no lag when synced" 0
                              repl.Wire.lag_records
                          | None ->
                            Alcotest.fail "replica stats missing repl section"))))))

(* At every tick, a replica read must agree with the primary: no tuple
   whose expiration has passed on the primary's clock is ever served. *)
let test_replica_reads_expiration_exact () =
  with_temp_dirs2 (fun pdir rdir ->
      with_primary pdir (fun server port ->
          with_replica ~primary_port:port rdir (fun r ->
              with_client port (fun c ->
                  ok (Client.exec_ok c "CREATE TABLE pol (uid, deg)");
                  for uid = 1 to 8 do
                    ok
                      (Client.exec_ok c
                         (Printf.sprintf
                            "INSERT INTO pol VALUES (%d, %d) EXPIRES %d" uid
                            (20 + uid) (2 * uid)))
                  done;
                  for tick = 1 to 16 do
                    ok (Client.exec_ok c (Printf.sprintf "ADVANCE TO %d" tick));
                    synced server r;
                    let rows = query_rows (Replica.port r) "SELECT uid FROM pol" in
                    Alcotest.(check bool)
                      (Printf.sprintf "tick %d: replica == primary" tick)
                      true
                      (rows = query_rows port "SELECT uid FROM pol");
                    List.iter
                      (fun (_, texp) ->
                        Alcotest.(check bool)
                          (Printf.sprintf "tick %d: nothing expired" tick)
                          true
                          Time.(texp > fin tick))
                      rows
                  done))))

let test_replica_is_read_only () =
  with_temp_dirs2 (fun pdir rdir ->
      with_primary pdir (fun server port ->
          with_client port (fun c ->
              ok (Client.exec_ok c "CREATE TABLE pol (uid, deg)"));
          with_replica ~primary_port:port rdir (fun r ->
              synced server r;
              with_client (Replica.port r) (fun c ->
                  (match ok (Client.exec c "INSERT INTO pol VALUES (9, 9)") with
                   | Wire.Err { code = Wire.Exec_error; message } ->
                     Alcotest.(check bool) "message names the primary" true
                       (String.length message > 0)
                   | r -> Alcotest.fail ("write accepted: " ^ Wire.render_response r));
                  match ok (Client.exec c "SELECT uid FROM pol") with
                  | Wire.Rows _ -> ()
                  | r -> Alcotest.fail ("read refused: " ^ Wire.render_response r)))))

(* Kill a replica, keep writing, restart it over the same directory: it
   resumes from its persisted position and converges. *)
let test_kill_restart_catch_up () =
  with_temp_dirs2 (fun pdir rdir ->
      with_primary pdir (fun server port ->
          with_client port (fun c ->
              ok (Client.exec_ok c "CREATE TABLE pol (uid, deg)");
              ok (Client.exec_ok c "INSERT INTO pol VALUES (1, 25) EXPIRES 10"));
          let stopped_at =
            with_replica ~primary_port:port rdir (fun r ->
                synced server r;
                Replica.position r)
          in
          Alcotest.(check bool) "position persisted before the kill" true
            (stopped_at > 0);
          with_client port (fun c ->
              ok (Client.exec_ok c "INSERT INTO pol VALUES (2, 25) EXPIRES 15");
              ok (Client.exec_ok c "ADVANCE TO 12"));
          with_replica ~primary_port:port rdir (fun r ->
              Alcotest.(check int) "restart resumes from disk" stopped_at
                (Replica.position r);
              synced server r;
              Alcotest.(check bool) "caught up record-by-record" true
                (Replica.snapshots_received r = 0);
              Alcotest.(check bool) "converged after restart" true
                (query_rows (Replica.port r) "SELECT uid FROM pol"
                 = query_rows port "SELECT uid FROM pol"))))

(* CHECKPOINT over the wire compacts the primary without stranding a
   live follower — the retained tail keeps streaming records. *)
let test_checkpoint_over_the_wire () =
  with_temp_dirs2 (fun pdir rdir ->
      with_primary pdir (fun server port ->
          with_replica ~primary_port:port rdir (fun r ->
              with_client port (fun c ->
                  ok (Client.exec_ok c "CREATE TABLE pol (uid, deg)");
                  ok (Client.exec_ok c "INSERT INTO pol VALUES (1, 25) EXPIRES 10");
                  ok (Client.exec_ok c "INSERT INTO pol VALUES (2, 25) EXPIRES 15");
                  ok (Client.exec_ok c "ADVANCE TO 12");
                  synced server r;
                  (match ok (Client.exec c "CHECKPOINT") with
                   | Wire.Ok_msg m ->
                     Alcotest.(check bool) "checkpoint reports compaction" true
                       (String.length m > 0)
                   | resp ->
                     Alcotest.fail ("CHECKPOINT: " ^ Wire.render_response resp));
                  ok (Client.exec_ok c "INSERT INTO pol VALUES (3, 35) EXPIRES 20");
                  synced server r;
                  Alcotest.(check int) "follower was not stranded" 0
                    (Replica.snapshots_received r);
                  Alcotest.(check bool) "still converged" true
                    (query_rows (Replica.port r) "SELECT uid FROM pol"
                     = query_rows port "SELECT uid FROM pol")))))

(* A v1 client speaks to a v2 server and gets the typed answer, not a
   dropped connection or a junk frame. *)
let test_v1_client_gets_version_mismatch () =
  with_temp_dir (fun pdir ->
      with_primary pdir (fun _server port ->
          let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
          let sock = Unix.socket PF_INET SOCK_STREAM 0 in
          Fun.protect
            ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
            (fun () ->
              Unix.connect sock addr;
              (* Version byte 1 + the PING tag: a well-formed v1 frame. *)
              let (_ : int) = Frame.send sock "\x01\x05" in
              let payload, _ = Frame.recv sock in
              match Wire.decode_response payload with
              | Ok (Wire.Err { code = Wire.Version_mismatch; message }) ->
                Alcotest.(check bool) "diagnostic names both versions" true
                  (String.length message > 0)
              | Ok r ->
                Alcotest.fail ("expected version mismatch, got "
                               ^ Wire.render_response r)
              | Error e -> Alcotest.fail ("undecodable reply: " ^ e))))

(* The read-routing client: writes land on the primary, reads fan out to
   replicas, and a dead replica degrades to the remaining endpoints. *)
let test_repl_client_routing () =
  with_temp_dir (fun pdir ->
      with_temp_dirs2 (fun rdir1 rdir2 ->
          with_primary pdir (fun server port ->
              with_replica ~primary_port:port rdir1 (fun r1 ->
                  with_replica ~primary_port:port rdir2 (fun r2 ->
                      let endpoint port = { Repl_client.host = "127.0.0.1"; port } in
                      let client =
                        Repl_client.create ~primary:(endpoint port)
                          ~replicas:
                            [ endpoint (Replica.port r1);
                              endpoint (Replica.port r2) ]
                          ()
                      in
                      Fun.protect
                        ~finally:(fun () -> Repl_client.close client)
                        (fun () ->
                          ok_response
                            (Repl_client.exec client "CREATE TABLE pol (uid, deg)");
                          ok_response
                            (Repl_client.exec client
                               "INSERT INTO pol VALUES (1, 25) EXPIRES 10");
                          synced server r1;
                          synced server r2;
                          (* Reads answer from replicas... *)
                          for _ = 1 to 4 do
                            match ok (Repl_client.query client "SELECT uid FROM pol") with
                            | Wire.Rows { rows; _ } ->
                              Alcotest.(check int) "routed read sees the row" 1
                                (List.length rows)
                            | r -> Alcotest.fail (Wire.render_response r)
                          done;
                          (* ...writes do not. *)
                          (match
                             ok (Repl_client.query client "INSERT INTO pol VALUES (2, 2)")
                           with
                           | Wire.Err _ -> ()
                           | Wire.Rows _ | _ ->
                             (* Round-robin may land this on the primary
                                fallback only when every replica is
                                down; with both up it must be refused. *)
                             Alcotest.fail "a write routed through query succeeded");
                          (* The primary advertises its followers. *)
                          (match ok (Repl_client.primary_stats client) with
                           | { Wire.repl = Some repl; _ } ->
                             Alcotest.(check bool) "primary role" true
                               (repl.Wire.role = Wire.Primary);
                             Alcotest.(check int) "two followers" 2
                               repl.Wire.followers
                           | _ -> Alcotest.fail "primary stats missing repl section");
                          (* Kill one replica: reads keep answering. *)
                          Replica.stop r1;
                          for _ = 1 to 4 do
                            match ok (Repl_client.query client "SELECT uid FROM pol") with
                            | Wire.Rows _ -> ()
                            | r -> Alcotest.fail (Wire.render_response r)
                          done))))))

(* Cross-node tracing: a traced read routed through [Repl_client]
   reaches a replica carrying the client's trace context, so the
   replica's spans record under the client's trace id, parented beneath
   the client-side rpc span; a traced write does the same on the
   primary.  Merging the three nodes' entries yields one Chrome trace
   whose processes cover every node. *)
let test_cross_node_trace () =
  with_temp_dirs2 (fun pdir rdir ->
      with_primary pdir (fun server port ->
          with_replica ~primary_port:port rdir (fun r ->
              with_client port (fun c ->
                  ok (Client.exec_ok c "CREATE TABLE pol (uid, deg)");
                  ok (Client.exec_ok c
                        "INSERT INTO pol VALUES (1, 25) EXPIRES 10"));
              synced server r;
              let endpoint port = { Repl_client.host = "127.0.0.1"; port } in
              let client =
                Repl_client.create ~primary:(endpoint port)
                  ~replicas:[ endpoint (Replica.port r) ] ()
              in
              Fun.protect
                ~finally:(fun () -> Repl_client.close client)
                (fun () ->
                  let tr = Expirel_obs.Trace.create () in
                  let tid = Expirel_obs.Trace.trace_id tr in
                  (match
                     ok (Repl_client.query ~trace:tr client
                           "SELECT uid FROM pol")
                   with
                   | Wire.Rows _ -> ()
                   | resp -> Alcotest.fail (Wire.render_response resp));
                  ok_response
                    (Repl_client.exec ~trace:tr client
                       "INSERT INTO pol VALUES (2, 35) EXPIRES 20");
                  let entries_of who port =
                    with_client port (fun c ->
                        match
                          List.filter
                            (fun (e : Wire.trace_entry) ->
                              e.entry_trace_id = tid)
                            (ok (Client.traces c 50))
                        with
                        | [] ->
                          Alcotest.fail
                            (who ^ " recorded nothing under the client's \
                                    trace id")
                        | es -> es)
                  in
                  let replica_entries =
                    entries_of "replica" (Replica.port r)
                  in
                  let primary_entries = entries_of "primary" port in
                  let replica_entry = List.hd replica_entries in
                  Alcotest.(check bool) "nodes named distinctly" true
                    (replica_entry.Wire.node
                     <> (List.hd primary_entries).Wire.node);
                  (* the client's rpc span is the remote spans' parent *)
                  let rpc_id =
                    match
                      List.find_opt
                        (fun (s : Expirel_obs.Trace.span) ->
                          String.length s.name >= 4
                          && String.sub s.name 0 4 = "rpc:")
                        (Expirel_obs.Trace.spans tr)
                    with
                    | Some s -> s.Expirel_obs.Trace.id
                    | None -> Alcotest.fail "client trace lost its rpc span"
                  in
                  let parse =
                    List.find
                      (fun (s : Wire.span) -> s.span_name = "parse")
                      replica_entry.Wire.entry_spans
                  in
                  Alcotest.(check (option int))
                    "replica spans sit under the client's rpc span"
                    (Some rpc_id) parse.Wire.parent_id;
                  (* merged export: one trace id, every node a process *)
                  let to_store (e : Wire.trace_entry) =
                    { Expirel_obs.Trace_store.node = e.Wire.node;
                      trace_id = e.Wire.entry_trace_id;
                      name = e.Wire.entry_name;
                      started_at = e.Wire.started_at;
                      total_us = e.Wire.entry_total_us;
                      spans =
                        List.map
                          (fun (s : Wire.span) ->
                            { Expirel_obs.Trace.id = s.Wire.span_id;
                              parent = s.Wire.parent_id;
                              name = s.Wire.span_name;
                              start_us = s.Wire.start_us;
                              duration_us = s.Wire.duration_us;
                              labels = s.Wire.labels
                            })
                          e.Wire.entry_spans
                    }
                  in
                  let store = Expirel_obs.Trace_store.create () in
                  Expirel_obs.Trace_store.finish store ~node:"client"
                    ~name:"routed read+write" tr;
                  let merged =
                    Expirel_obs.Trace_store.recent store 1
                    @ List.map to_store (primary_entries @ replica_entries)
                  in
                  let json = Expirel_obs.Trace_export.to_json merged in
                  let contains sub =
                    let n = String.length sub in
                    let rec go i =
                      i + n <= String.length json
                      && (String.sub json i n = sub || go (i + 1))
                    in
                    go 0
                  in
                  List.iter
                    (fun sub ->
                      Alcotest.(check bool) ("export carries: " ^ sub) true
                        (contains sub))
                    [ "\"traceEvents\":[";
                      "\"" ^ tid ^ "\"";
                      "process_name";
                      "\"client\"";
                      "\"" ^ replica_entry.Wire.node ^ "\"";
                      "\"" ^ (List.hd primary_entries).Wire.node ^ "\"" ]))))

let suite =
  [ Alcotest.test_case "positions are monotone" `Quick test_position_monotone;
    Alcotest.test_case "ship_from trichotomy" `Quick test_ship_from;
    Alcotest.test_case "snapshot beyond retention" `Quick
      test_ship_snapshot_beyond_retention;
    Alcotest.test_case "checkpoint keeps the tail" `Quick
      test_checkpoint_keeps_tail;
    prop_replay_prefix_records;
    prop_replay_snapshot_path;
    Alcotest.test_case "two replicas converge" `Quick test_two_replicas_converge;
    Alcotest.test_case "replica reads are expiration-exact" `Quick
      test_replica_reads_expiration_exact;
    Alcotest.test_case "replica is read-only" `Quick test_replica_is_read_only;
    Alcotest.test_case "kill/restart catches up" `Quick
      test_kill_restart_catch_up;
    Alcotest.test_case "checkpoint over the wire" `Quick
      test_checkpoint_over_the_wire;
    Alcotest.test_case "v1 client gets a typed mismatch" `Quick
      test_v1_client_gets_version_mismatch;
    Alcotest.test_case "read-routing client" `Quick test_repl_client_routing;
    Alcotest.test_case "cross-node trace: one id, merged export" `Quick
      test_cross_node_trace ]
