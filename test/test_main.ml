let () =
  Alcotest.run "expirel"
    [ (* core *)
      "time", Test_time.suite;
      "interval", Test_interval.suite;
      "interval-set", Test_interval_set.suite;
      "value", Test_value.suite;
      "tuple", Test_tuple.suite;
      "predicate", Test_predicate.suite;
      "relation", Test_relation.suite;
      "aggregate", Test_aggregate.suite;
      "algebra", Test_algebra.suite;
      "monotone", Test_monotone.suite;
      "eval", Test_eval.suite;
      "theorems", Test_theorems.suite;
      "validity", Test_validity.suite;
      "view", Test_view.suite;
      "patch", Test_patch.suite;
      "heap", Test_heap.suite;
      "rewrite", Test_rewrite.suite;
      "cost", Test_cost.suite;
      "qos", Test_qos.suite;
      "antijoin", Test_antijoin.suite;
      "maintained", Test_maintained.suite;
      "schrodinger-view", Test_schrodinger_view.suite;
      "explain", Test_explain.suite;
      (* expiration-index substrate *)
      "binary-heap", Test_binary_heap.suite;
      "timer-wheel", Test_timer_wheel.suite;
      "expiration-index", Test_expiration_index.suite;
      (* storage substrate *)
      "table", Test_table.suite;
      "trigger", Test_trigger.suite;
      "database", Test_database.suite;
      "access", Test_access.suite;
      "subscription", Test_subscription.suite;
      "rwlock", Test_rwlock.suite;
      "invariant", Test_invariant.suite;
      "wal", Test_wal.suite;
      "durable", Test_durable.suite;
      (* query-language substrate *)
      "lexer", Test_lexer.suite;
      "parser", Test_parser.suite;
      "lower", Test_lower.suite;
      "sql-print", Test_sql_print.suite;
      "interp", Test_interp.suite;
      "plan", Test_plan.suite;
      "scripts", Test_scripts.suite;
      (* loosely-coupled-system substrate *)
      "sim", Test_sim.suite;
      "sim-update", Test_sim_update.suite;
      "sim-unreliable", Test_sim_unreliable.suite;
      (* bounded-memory sketches *)
      "sketch", Test_sketch.suite;
      (* observability *)
      "obs", Test_obs.suite;
      "horizon", Test_horizon.suite;
      (* networked server *)
      "wire", Test_wire.suite;
      "server", Test_server.suite;
      "repl", Test_repl.suite;
      "cluster", Test_cluster.suite;
      (* workloads *)
      "workload", Test_workload.suite ]
