(* The readers–writer lock under real systhreads: writers are mutually
   exclusive, readers genuinely share, a waiting writer shuts the door
   on new readers (the no-starvation rule that keeps ADVANCE live under
   a stream of queries), and readers never observe a half-applied
   write. *)

open Expirel_storage

let test_writers_exclusive () =
  (* A read-modify-write with a deliberate yield in the middle: any two
     writers in the critical section at once lose increments. *)
  let l = Rwlock.create () in
  let counter = ref 0 in
  let worker () =
    for _ = 1 to 1_000 do
      Rwlock.with_write l (fun () ->
          let v = !counter in
          Thread.yield ();
          counter := v + 1)
    done
  in
  let threads = List.init 8 (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  Alcotest.(check int) "no lost increments" 8_000 !counter

let test_readers_share () =
  (* All four readers wait inside the read section for each other; the
     rendezvous only completes if they hold the lock simultaneously. *)
  let l = Rwlock.create () in
  let inside = ref 0 in
  let m = Mutex.create () in
  let c = Condition.create () in
  let reader () =
    Rwlock.with_read l (fun () ->
        Mutex.lock m;
        incr inside;
        Condition.broadcast c;
        while !inside < 4 do
          Condition.wait c m
        done;
        Mutex.unlock m)
  in
  let threads = List.init 4 (fun _ -> Thread.create reader ()) in
  List.iter Thread.join threads;
  Alcotest.(check int) "four concurrent read holders" 4 !inside

let test_try_locks_respect_writer () =
  let l = Rwlock.create () in
  Rwlock.write_lock l;
  Alcotest.(check bool) "no read under a writer" false (Rwlock.try_read_lock l);
  Alcotest.(check bool) "no second writer" false (Rwlock.try_write_lock l);
  Rwlock.write_unlock l;
  Alcotest.(check bool) "read after release" true (Rwlock.try_read_lock l);
  Alcotest.(check int) "one reader held" 1 (Rwlock.readers l);
  Alcotest.(check bool) "no writer among readers" false (Rwlock.try_write_lock l);
  Rwlock.read_unlock l

let test_waiting_writer_blocks_new_readers () =
  (* Writer preference: once a writer queues behind the active reader,
     try_read_lock must refuse — new readers cannot starve it. *)
  let l = Rwlock.create () in
  Rwlock.read_lock l;
  let entered = ref false in
  let writer =
    Thread.create (fun () -> Rwlock.with_write l (fun () -> entered := true)) ()
  in
  let rec wait_queued n =
    if n > 5_000 then Alcotest.fail "writer never queued"
    else if Rwlock.try_read_lock l then begin
      Rwlock.read_unlock l;
      Thread.delay 0.001;
      wait_queued (n + 1)
    end
  in
  wait_queued 0;
  Alcotest.(check bool) "writer excluded while reader holds" false !entered;
  Rwlock.read_unlock l;
  Thread.join writer;
  Alcotest.(check bool) "writer admitted after reader left" true !entered

let test_no_torn_reads () =
  (* A writer updates two cells non-atomically inside its critical
     section; readers must never see them disagree. *)
  let l = Rwlock.create () in
  let a = ref 0 in
  let b = ref 0 in
  let stop = ref false in
  let torn = ref false in
  let writer () =
    for i = 1 to 2_000 do
      Rwlock.with_write l (fun () ->
          a := i;
          Thread.yield ();
          b := i)
    done;
    stop := true
  in
  let reader () =
    while not !stop do
      Rwlock.with_read l (fun () -> if !a <> !b then torn := true)
    done
  in
  let w = Thread.create writer () in
  let readers = List.init 3 (fun _ -> Thread.create reader ()) in
  Thread.join w;
  List.iter Thread.join readers;
  Alcotest.(check bool) "readers saw consistent pairs" false !torn

let suite =
  [ Alcotest.test_case "writers are mutually exclusive" `Quick test_writers_exclusive;
    Alcotest.test_case "readers share" `Quick test_readers_share;
    Alcotest.test_case "try-locks respect a writer" `Quick test_try_locks_respect_writer;
    Alcotest.test_case "waiting writer blocks new readers" `Quick
      test_waiting_writer_blocks_new_readers;
    Alcotest.test_case "no torn reads" `Quick test_no_torn_reads ]
