open Expirel_index

let test_basics () =
  let w = Timer_wheel.create ~start:0 () in
  Timer_wheel.add w ~at:5 1;
  Timer_wheel.add w ~at:3 2;
  Timer_wheel.add w ~at:5 3;
  Alcotest.(check int) "size" 3 (Timer_wheel.size w);
  Alcotest.(check (list (pair int int))) "advance to 4" [ 3, 2 ]
    (Timer_wheel.advance w ~to_:4);
  Alcotest.(check (list (pair int int))) "advance to 10" [ 5, 1; 5, 3 ]
    (Timer_wheel.advance w ~to_:10);
  Alcotest.(check int) "drained" 0 (Timer_wheel.size w);
  Alcotest.check_raises "backwards rejected"
    (Invalid_argument "Timer_wheel.advance: moving backwards") (fun () ->
      ignore (Timer_wheel.advance w ~to_:2))

let test_overdue () =
  let w = Timer_wheel.create ~start:10 () in
  Timer_wheel.add w ~at:4 7;
  Alcotest.(check (list (pair int int))) "overdue delivered on next advance"
    [ 4, 7 ]
    (Timer_wheel.advance w ~to_:11)

let test_level_crossing () =
  (* Entries far beyond level 0 (64 ticks) and level 1 (4096 ticks). *)
  let w = Timer_wheel.create ~start:0 () in
  Timer_wheel.add w ~at:100 1;
  Timer_wheel.add w ~at:5000 2;
  Timer_wheel.add w ~at:70000 3;
  Alcotest.(check (list (pair int int))) "nothing early" []
    (Timer_wheel.advance w ~to_:99);
  Alcotest.(check (list (pair int int))) "level-1 entry" [ 100, 1 ]
    (Timer_wheel.advance w ~to_:100);
  Alcotest.(check (list (pair int int))) "level-2 entry" [ 5000, 2 ]
    (Timer_wheel.advance w ~to_:6000);
  Alcotest.(check (list (pair int int))) "level-3 entry" [ 70000, 3 ]
    (Timer_wheel.advance w ~to_:70000)

let test_overflow () =
  let w = Timer_wheel.create ~wheel_size:4 ~levels:2 ~start:0 () in
  (* Horizon is 4^2 = 16 ticks; 100 goes to overflow and must still
     surface. *)
  Timer_wheel.add w ~at:100 9;
  Timer_wheel.add w ~at:3 1;
  Alcotest.(check (list (pair int int))) "near entry" [ 3, 1 ]
    (Timer_wheel.advance w ~to_:50);
  Alcotest.(check (list (pair int int))) "overflow entry" [ 100, 9 ]
    (Timer_wheel.advance w ~to_:120)

let test_next_expiry () =
  let w = Timer_wheel.create ~start:0 () in
  Alcotest.(check (option int)) "empty" None (Timer_wheel.next_expiry w);
  Timer_wheel.add w ~at:42 1;
  Timer_wheel.add w ~at:7 2;
  Alcotest.(check (option int)) "min" (Some 7) (Timer_wheel.next_expiry w)

let schedule_gen =
  QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 80)
    (QCheck2.Gen.pair (QCheck2.Gen.int_range 1 9000) (QCheck2.Gen.int_range 0 1000))

let prop_wheel_matches_sort =
  Generators.qtest "wheel delivers every entry at its time, in order"
    schedule_gen (fun entries ->
      let w = Timer_wheel.create ~start:0 () in
      List.iter (fun (at, id) -> Timer_wheel.add w ~at id) entries;
      (* Advance in irregular hops. *)
      let collected = ref [] in
      let rec hop t =
        if t < 10000 then begin
          collected := !collected @ Timer_wheel.advance w ~to_:t;
          hop (t + 617)
        end
      in
      hop 400;
      collected := !collected @ Timer_wheel.advance w ~to_:10000;
      !collected = List.sort compare entries)

(* Regression: advance used to walk every intermediate tick, so a large
   clock jump over a sparse wheel was O(Δt).  A jump of 2e9 ticks over an
   empty wheel must complete (near-)instantly, and entries scattered
   across a huge range must still all surface, in order. *)
let test_large_jump_fast () =
  let w = Timer_wheel.create ~start:0 () in
  let t0 = Unix.gettimeofday () in
  Alcotest.(check (list (pair int int))) "empty jump delivers nothing" []
    (Timer_wheel.advance w ~to_:2_000_000_000);
  Timer_wheel.add w ~at:2_500_000_000 1;
  Timer_wheel.add w ~at:3_000_000_007 2;
  Timer_wheel.add w ~at:3_500_000_000 3;
  Alcotest.(check (list (pair int int))) "sparse jump delivers all, in order"
    [ 2_500_000_000, 1; 3_000_000_007, 2; 3_500_000_000, 3 ]
    (Timer_wheel.advance w ~to_:3_500_000_001);
  Alcotest.(check int) "drained" 0 (Timer_wheel.size w);
  Alcotest.(check bool) "3.5e9 ticks advanced in well under a second" true
    (Unix.gettimeofday () -. t0 < 1.0)

(* A naive per-tick reference: advance one tick at a time.  Any schedule
   advanced over a large jump must deliver exactly what the reference
   delivers — same entries, same order. *)
let naive_advance w ~to_ =
  let acc = ref [] in
  let now = ref (Timer_wheel.now w) in
  while !now < to_ do
    incr now;
    acc := !acc @ Timer_wheel.advance w ~to_:!now
  done;
  !acc

let jump_gen =
  QCheck2.Gen.pair
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 20)
       (QCheck2.Gen.pair
          (QCheck2.Gen.int_range 1 300_000)
          (QCheck2.Gen.int_range 0 1000)))
    (QCheck2.Gen.int_range 100_000 400_000)

let prop_jump_matches_naive =
  Generators.qtest "one large advance == naive per-tick advance" ~count:30
    jump_gen (fun (entries, to_) ->
      let fast = Timer_wheel.create ~start:0 () in
      let slow = Timer_wheel.create ~start:0 () in
      List.iter
        (fun (at, id) ->
          Timer_wheel.add fast ~at id;
          Timer_wheel.add slow ~at id)
        entries;
      Timer_wheel.advance fast ~to_ = naive_advance slow ~to_
      && Timer_wheel.size fast = Timer_wheel.size slow)

let suite =
  [ Alcotest.test_case "add/advance ordering" `Quick test_basics;
    Alcotest.test_case "large jump skips empty ticks" `Quick
      test_large_jump_fast;
    prop_jump_matches_naive;
    Alcotest.test_case "overdue entries" `Quick test_overdue;
    Alcotest.test_case "crossing wheel levels" `Quick test_level_crossing;
    Alcotest.test_case "overflow beyond horizon" `Quick test_overflow;
    Alcotest.test_case "next_expiry" `Quick test_next_expiry;
    prop_wheel_matches_sort ]
