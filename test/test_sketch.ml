(* The sketch subsystem, from the structures up through SQL.

   What the properties pin:

   - the counter's [within] is a hard bound — |estimate - exact live
     count| <= within on every random workload, at every tau, and the
     bound survives merging and serialisation;
   - the counter's horizon is honest: the answer cannot change before
     it (cacheability of approximate answers);
   - the sample never returns an expired element, never more than [k],
     and with deterministic priorities it is exactly the reference
     "k smallest-priority live elements" — merging is exactly the
     sketch of the concatenated streams;
   - the spread's diameter is within its advertised additive bound;
   - memory stays sublinear on a deterministic large stream;
   - the SQL surface: APPROX_COUNT/SAMPLE through the interpreter
     (including AT and EXPLAIN ANALYZE's sketch annotation), the
     global exact aggregates that no longer require GROUP BY, and the
     refusals (mixed select lists, GROUP BY, views, constraints). *)

open Expirel_core
module Sketch = Expirel_sketch
module Gen = QCheck2.Gen

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

(* ---------- generators ---------- *)

(* Streams live on a short expiration axis so taus collide with bucket
   boundaries and many elements share a texp. *)
let max_texp = 60

let texp_gen : Time.t Gen.t =
  Gen.frequency
    [ 12, Gen.map Time.of_int (Gen.int_range 1 max_texp);
      1, Gen.return Time.Inf ]

let stream_gen : Time.t list Gen.t = Gen.list_size (Gen.int_range 0 300) texp_gen

let tau_gen : Time.t Gen.t = Gen.map Time.of_int (Gen.int_range 0 (max_texp + 2))

let epsilon_gen : float Gen.t =
  Gen.oneofl [ 0.01; 0.05; 0.1; 0.3; 0.5 ]

let exact_live tau stream =
  List.length (List.filter (fun texp -> Time.(texp > tau)) stream)

let counter_of ~epsilon stream =
  let c = Sketch.Counter.create ~epsilon in
  List.iter (fun texp -> Sketch.Counter.add c ~texp) stream;
  c

(* ---------- counter ---------- *)

let within_bound name c stream tau =
  let { Sketch.Counter.estimate; within; _ } = Sketch.Counter.query c ~tau in
  let exact = float_of_int (exact_live tau stream) in
  if Float.abs (estimate -. exact) > within then
    QCheck2.Test.fail_reportf
      "%s: estimate %.1f, exact %.0f, within %.1f at tau %s" name estimate
      exact within (Time.to_string tau)
  else true

let counter_hard_bound =
  Generators.qtest "counter: |estimate - exact| <= within, always"
    (Gen.triple epsilon_gen stream_gen tau_gen)
    (fun (epsilon, stream, tau) ->
      within_bound "plain" (counter_of ~epsilon stream) stream tau)

let counter_merge_bound =
  Generators.qtest "counter: merge keeps the bound over concatenation"
    (Gen.quad epsilon_gen stream_gen stream_gen tau_gen)
    (fun (epsilon, s1, s2, tau) ->
      let merged =
        Sketch.Counter.merge (counter_of ~epsilon s1) (counter_of ~epsilon s2)
      in
      within_bound "merged" merged (s1 @ s2) tau)

let counter_codec_bound =
  Generators.qtest "counter: serialisation round-trips the answer"
    (Gen.triple epsilon_gen stream_gen tau_gen)
    (fun (epsilon, stream, tau) ->
      let c = counter_of ~epsilon stream in
      let c' = ok_or_fail (Sketch.Counter.of_string (Sketch.Counter.to_string c)) in
      let a = Sketch.Counter.query c ~tau and b = Sketch.Counter.query c' ~tau in
      a.Sketch.Counter.estimate = b.Sketch.Counter.estimate
      && a.Sketch.Counter.within = b.Sketch.Counter.within
      && Time.equal a.Sketch.Counter.horizon b.Sketch.Counter.horizon)

(* The horizon is the earliest instant strictly after tau at which the
   answer can change: at every tau' in (tau, horizon) the answer is
   identical — an approximate result is cacheable until its texp(e). *)
let counter_horizon =
  Generators.qtest "counter: answer constant until its horizon"
    (Gen.triple epsilon_gen stream_gen tau_gen)
    (fun (epsilon, stream, tau) ->
      let c = counter_of ~epsilon stream in
      let a = Sketch.Counter.query c ~tau in
      match a.Sketch.Counter.horizon with
      | Time.Inf ->
        (* Nothing left to expire: constant forever after. *)
        let b = Sketch.Counter.query c ~tau:(Time.of_int (max_texp + 10)) in
        b.Sketch.Counter.estimate = a.Sketch.Counter.estimate
      | Time.Fin h ->
        Time.(Time.of_int h > tau)
        && List.for_all
             (fun tau' ->
               let b = Sketch.Counter.query c ~tau:(Time.of_int tau') in
               b.Sketch.Counter.estimate = a.Sketch.Counter.estimate)
             (let t0 = match tau with Time.Fin n -> n | Time.Inf -> 0 in
              List.init (max 0 (h - t0 - 1)) (fun i -> t0 + 1 + i)))

(* Deterministic scale check: memory is O(eps^-1 log n), not O(n). *)
let test_counter_memory () =
  let c = Sketch.Counter.create ~epsilon:0.01 in
  for i = 1 to 100_000 do
    Sketch.Counter.add c ~texp:(Time.of_int i)
  done;
  let buckets = Sketch.Counter.buckets c in
  Alcotest.(check bool)
    (Printf.sprintf "buckets stay logarithmic (%d)" buckets)
    true (buckets < 2_000);
  Alcotest.(check bool) "under a byte per element" true
    (Sketch.Counter.memory_bytes c < 100_000)

(* ---------- sample ---------- *)

(* Deterministic workloads: each element carries its own priority, so
   the sketch must agree exactly with the reference computation. *)
let prioritised_stream_gen : (int * Time.t * float) list Gen.t =
  Gen.list_size (Gen.int_range 0 120)
    (Gen.map
       (fun ((v, texp), prio) -> (v, texp, prio))
       (Gen.pair (Gen.pair (Gen.int_range 0 30) texp_gen) (Gen.float_bound_exclusive 1.0)))

let sample_of ~k stream =
  let s = Sketch.Sample.create ~k () in
  List.iter
    (fun (v, texp, prio) ->
      Sketch.Sample.add_with_priority s [ Value.int v ] ~texp ~prio)
    stream;
  s

(* The k live elements with the smallest priorities, in priority order. *)
let reference_sample ~k ~tau stream =
  List.filter (fun (_, texp, _) -> Time.(texp > tau)) stream
  |> List.stable_sort (fun (_, _, p) (_, _, q) -> Float.compare p q)
  |> List.filteri (fun i _ -> i < k)
  |> List.map (fun (v, texp, _) -> ([ Value.int v ], texp))

let sample_matches_reference =
  Generators.qtest "sample: exactly the k smallest-priority live elements"
    (Gen.triple (Gen.int_range 1 8) prioritised_stream_gen tau_gen)
    (fun (k, stream, tau) ->
      Sketch.Sample.query (sample_of ~k stream) ~tau
      = reference_sample ~k ~tau stream)

let sample_liveness =
  Generators.qtest "sample: never an expired element, never more than k"
    (Gen.triple (Gen.int_range 1 8) prioritised_stream_gen tau_gen)
    (fun (k, stream, tau) ->
      let rows = Sketch.Sample.query (sample_of ~k stream) ~tau in
      List.length rows <= k
      && List.for_all (fun (_, texp) -> Time.(texp > tau)) rows)

let sample_merge_exact =
  Generators.qtest "sample: merge == sketch of the concatenated streams"
    (Gen.quad (Gen.int_range 1 8) prioritised_stream_gen prioritised_stream_gen
       tau_gen)
    (fun (k, s1, s2, tau) ->
      let merged = Sketch.Sample.merge (sample_of ~k s1) (sample_of ~k s2) in
      Sketch.Sample.query merged ~tau
      = Sketch.Sample.query (sample_of ~k (s1 @ s2)) ~tau)

let sample_codec =
  Generators.qtest "sample: serialisation round-trips the query"
    (Gen.triple (Gen.int_range 1 8) prioritised_stream_gen tau_gen)
    (fun (k, stream, tau) ->
      let s = sample_of ~k stream in
      let s' = ok_or_fail (Sketch.Sample.of_string (Sketch.Sample.to_string s)) in
      Sketch.Sample.query s ~tau = Sketch.Sample.query s' ~tau)

(* Uniformity, as a deterministic chi-square-ish sanity check: sampling
   1 of 20 equally-live elements over many independent priority draws
   hits every element at a frequency near 1/20. *)
let test_sample_uniformity () =
  let n = 20 and draws = 4_000 in
  let hits = Array.make n 0 in
  for seed = 1 to draws do
    let s = Sketch.Sample.create ~seed ~k:1 () in
    for v = 0 to n - 1 do
      Sketch.Sample.add s [ Value.int v ] ~texp:(Time.of_int 10)
    done;
    match Sketch.Sample.query s ~tau:(Time.of_int 5) with
    | [ ([ Value.Int v ], _) ] -> hits.(v) <- hits.(v) + 1
    | _ -> Alcotest.fail "expected a singleton sample"
  done;
  let expected = float_of_int draws /. float_of_int n in
  Array.iteri
    (fun v h ->
      let dev = Float.abs (float_of_int h -. expected) /. expected in
      Alcotest.(check bool)
        (Printf.sprintf "element %d drawn uniformly (%d times)" v h)
        true (dev < 0.5))
    hits

(* ---------- spread ---------- *)

let valued_stream_gen : (float * Time.t) list Gen.t =
  Gen.list_size (Gen.int_range 0 200)
    (Gen.pair (Gen.map float_of_int (Gen.int_range (-50) 50)) texp_gen)

let spread_bound =
  Generators.qtest "spread: diameter within the advertised additive bound"
    (Gen.triple epsilon_gen valued_stream_gen tau_gen)
    (fun (epsilon, stream, tau) ->
      let s = Sketch.Spread.create ~epsilon in
      List.iter (fun (v, texp) -> Sketch.Spread.add s v ~texp) stream;
      let live = List.filter (fun (_, texp) -> Time.(texp > tau)) stream in
      match Sketch.Spread.query s ~tau with
      | None -> live = []
      | Some { Sketch.Spread.diameter; within; _ } ->
        (match live with
         | [] -> false
         | (v0, _) :: _ ->
           let lo, hi =
             List.fold_left
               (fun (lo, hi) (v, _) -> (Float.min lo v, Float.max hi v))
               (v0, v0) live
           in
           Float.abs (diameter -. (hi -. lo)) <= within))

(* ---------- the SQL surface ---------- *)

let exec t sql =
  match Expirel_sqlx.Interp.exec_sql t sql with
  | Ok outcome -> outcome
  | Error msg -> Alcotest.failf "%S failed: %s" sql msg

let expect_error t sql =
  match Expirel_sqlx.Interp.exec_sql t sql with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "expected %S to fail" sql

let listing = function
  | Expirel_sqlx.Interp.Rows { listing; _ } -> listing
  | Expirel_sqlx.Interp.Msg m -> Alcotest.failf "expected rows, got %S" m

let setup_sensor_table ?(rows = 500) () =
  let t = Expirel_sqlx.Interp.create () in
  ignore (exec t "CREATE TABLE s (id, v)");
  for i = 1 to rows do
    (* Expirations spread over (0, 2*rows]: at time [rows], half live. *)
    ignore
      (exec t
         (Printf.sprintf "INSERT INTO s VALUES (%d, %d) EXPIRES %d" i (i * 2)
            (2 * ((i * 7919) mod rows + 1))))
  done;
  t

let approx_row t sql =
  match listing (exec t sql) with
  | [ (row, _) ] ->
    (match Tuple.to_list row with
     | [ Value.Int est; Value.Float within ] -> (est, within)
     | _ -> Alcotest.failf "%S: unexpected row shape" sql)
  | rows -> Alcotest.failf "%S: expected one row, got %d" sql (List.length rows)

let test_sql_approx_count () =
  let t = setup_sensor_table () in
  let exact () =
    match listing (exec t "SELECT COUNT(*) FROM s") with
    | [ (row, _) ] ->
      (match Tuple.to_list row with
       | [ Value.Int n ] -> n
       | _ -> Alcotest.fail "unexpected COUNT shape")
    | [] -> 0
    | _ -> Alcotest.fail "unexpected COUNT listing"
  in
  let check_at label =
    let est, within = approx_row t "SELECT APPROX_COUNT(0.05) FROM s" in
    let ex = exact () in
    Alcotest.(check bool)
      (Printf.sprintf "%s: |%d - %d| <= %.1f" label est ex within)
      true
      (Float.abs (float_of_int (est - ex)) <= within);
    Alcotest.(check bool)
      (Printf.sprintf "%s: bound respects epsilon" label)
      true
      (within <= (0.05 *. float_of_int ex) +. 1.)
  in
  check_at "fresh";
  ignore (exec t "ADVANCE TO 250");
  check_at "half expired";
  ignore (exec t "ADVANCE TO 995");
  check_at "nearly drained";
  (* AT: the sketch is built at the future tau, same contract. *)
  let est_now, _ = approx_row t "SELECT APPROX_COUNT(0.05) FROM s" in
  let est_at, _ = approx_row t "SELECT APPROX_COUNT(0.05) FROM s AT 2000" in
  Alcotest.(check int) "everything dead at 2000" 0 est_at;
  Alcotest.(check bool) "and still live now" true (est_now > 0)

let test_sql_sample () =
  let t = setup_sensor_table () in
  ignore (exec t "ADVANCE TO 250");
  let rows = listing (exec t "SELECT SAMPLE(20) FROM s") in
  Alcotest.(check int) "k rows" 20 (List.length rows);
  List.iter
    (fun (row, texp) ->
      Alcotest.(check bool) "sampled row is live" true
        Time.(texp > Time.of_int 250);
      match Tuple.to_list row with
      | [ Value.Int id; Value.Int v ] ->
        Alcotest.(check bool) "sampled row was inserted" true (v = 2 * id)
      | _ -> Alcotest.fail "unexpected sampled row shape")
    rows;
  (* texp(e): the answer's own expiration is the soonest sampled texp. *)
  (match exec t "SELECT SAMPLE(20) FROM s" with
   | Expirel_sqlx.Interp.Rows { texp_e; listing; _ } ->
     Alcotest.(check bool) "texp(e) = min sampled texp" true
       (Time.equal texp_e
          (Time.min_list (List.map snd listing)))
   | _ -> Alcotest.fail "expected rows")

let test_sql_global_aggregates () =
  let t = Expirel_sqlx.Interp.create () in
  ignore (exec t "CREATE TABLE g (k, v)");
  List.iter
    (fun sql -> ignore (exec t sql))
    [ "INSERT INTO g VALUES (1, 10) EXPIRES 10";
      "INSERT INTO g VALUES (2, 30) EXPIRES 20";
      "INSERT INTO g VALUES (3, 20) EXPIRES 30" ];
  let single sql =
    match listing (exec t sql) with
    | [ (row, _) ] -> Tuple.to_list row
    | rows -> Alcotest.failf "%S: expected one row, got %d" sql (List.length rows)
  in
  Alcotest.(check bool) "COUNT(*)" true
    (single "SELECT COUNT(*) FROM g" = [ Value.int 3 ]);
  Alcotest.(check bool) "SUM" true
    (single "SELECT SUM(v) FROM g" = [ Value.int 60 ]);
  Alcotest.(check bool) "MIN" true
    (single "SELECT MIN(v) FROM g" = [ Value.int 10 ]);
  Alcotest.(check bool) "MAX" true
    (single "SELECT MAX(v) FROM g" = [ Value.int 30 ]);
  Alcotest.(check bool) "AVG" true
    (single "SELECT AVG(v) FROM g" = [ Value.Float 20. ]);
  ignore (exec t "ADVANCE TO 10");
  Alcotest.(check bool) "COUNT after expiry" true
    (single "SELECT COUNT(*) FROM g" = [ Value.int 2 ]);
  Alcotest.(check bool) "MAX with WHERE" true
    (single "SELECT MAX(v) FROM g WHERE k = 3" = [ Value.int 20 ])

let string_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_sql_explain_and_obs () =
  Sketch.Observatory.reset ();
  let t = setup_sensor_table ~rows:50 () in
  (match exec t "EXPLAIN SELECT APPROX_COUNT(0.1) FROM s" with
   | Expirel_sqlx.Interp.Msg m ->
     Alcotest.(check bool) "EXPLAIN shows the sketch operator" true
       (string_contains m "sketch-count")
   | _ -> Alcotest.fail "expected an explain text");
  (match exec t "EXPLAIN ANALYZE SELECT APPROX_COUNT(0.1) FROM s" with
   | Expirel_sqlx.Interp.Msg m ->
     Alcotest.(check bool) "EXPLAIN ANALYZE reports sketch bytes" true
       (string_contains m "sketch=");
     Alcotest.(check bool) "and the operator" true
       (string_contains m "sketch-count")
   | _ -> Alcotest.fail "expected an explain analyze text");
  ignore (exec t "SELECT SAMPLE(3) FROM s");
  let snapshot = Sketch.Observatory.snapshot () in
  let find name =
    match List.assoc_opt name snapshot with
    | Some v -> v
    | None ->
      Alcotest.failf "no %S gauge in %s" name
        (String.concat ", " (List.map fst snapshot))
  in
  let bytes, estimate = find "approx_count(0.1)" in
  Alcotest.(check bool) "counter gauge has bytes" true (bytes > 0);
  Alcotest.(check bool) "counter gauge has an estimate" true (estimate > 0.);
  let sample_bytes, _ = find "sample(3)" in
  Alcotest.(check bool) "sample gauge has bytes" true (sample_bytes > 0)

let test_sql_refusals () =
  let t = setup_sensor_table ~rows:10 () in
  expect_error t "SELECT APPROX_COUNT(0.1), id FROM s";
  expect_error t "SELECT APPROX_COUNT(0.1), SAMPLE(2) FROM s";
  expect_error t "SELECT APPROX_COUNT(0.1) FROM s GROUP BY id";
  expect_error t "SELECT APPROX_COUNT(0.0) FROM s";
  expect_error t "SELECT APPROX_COUNT(1.5) FROM s";
  expect_error t "SELECT SAMPLE(0) FROM s";
  expect_error t "CREATE VIEW v AS SELECT APPROX_COUNT(0.1) FROM s";
  expect_error t "CREATE CONSTRAINT c ON SELECT APPROX_COUNT(0.1) FROM s MIN 2";
  expect_error t "SELECT APPROX_COUNT(0.1) FROM s UNION SELECT id FROM s"

let suite =
  [ counter_hard_bound;
    counter_merge_bound;
    counter_codec_bound;
    counter_horizon;
    Alcotest.test_case "counter memory stays sublinear" `Quick
      test_counter_memory;
    sample_matches_reference;
    sample_liveness;
    sample_merge_exact;
    sample_codec;
    Alcotest.test_case "singleton sample is uniform" `Quick
      test_sample_uniformity;
    spread_bound;
    Alcotest.test_case "SQL: APPROX_COUNT within bound" `Quick
      test_sql_approx_count;
    Alcotest.test_case "SQL: SAMPLE is live and honest" `Quick test_sql_sample;
    Alcotest.test_case "SQL: global aggregates without GROUP BY" `Quick
      test_sql_global_aggregates;
    Alcotest.test_case "SQL: EXPLAIN and observability gauges" `Quick
      test_sql_explain_and_obs;
    Alcotest.test_case "SQL: refusals" `Quick test_sql_refusals ]
