(* The wire protocol's codecs are pure string functions, so they get the
   full property treatment: encode/decode round-trips for every message
   constructor, and adversarial decoding — truncations, oversized length
   prefixes, unknown tags, wrong versions, trailing garbage, random
   junk — which must come back as [Error]/[Malformed], never as an
   exception. *)

open Expirel_core
open Expirel_storage
open Expirel_server
module Gen = QCheck2.Gen

(* ---------- generators ---------- *)

(* Wire values exercise every constructor (the relational tests stick to
   small ints; the codec must also carry strings, floats and bools).
   Floats travel as IEEE bits, so any non-nan float round-trips exactly. *)
let value : Value.t Gen.t =
  Gen.frequency
    [ 3, Gen.map Value.int (Gen.int_range (-1_000_000) 1_000_000);
      2, Gen.map Value.str (Gen.string_size ~gen:Gen.printable (Gen.int_range 0 12));
      2, Gen.map (fun i -> Value.float (float_of_int i /. 8.)) (Gen.int_range (-800) 800);
      1, Gen.map Value.bool Gen.bool;
      1, Gen.return Value.Null ]

let time : Time.t Gen.t =
  Gen.frequency
    [ 6, Gen.map Time.of_int (Gen.int_range 0 1_000_000);
      1, Gen.return Time.Inf ]

let name = Gen.string_size ~gen:Gen.printable (Gen.int_range 0 20)
let row = Gen.list_size (Gen.int_range 0 5) value

(* Trace contexts and spans carry arbitrary strings (ids, labels) and
   the 0 = no-parent convention; both directions must round-trip. *)
let trace_ctx : Wire.trace_ctx Gen.t =
  Gen.map2
    (fun trace_id parent_span -> { Wire.trace_id; parent_span })
    name (Gen.int_range 0 1_000)

(* v5 cluster payloads: shard maps, partition summaries, moved rows. *)
let shard : Wire.shard Gen.t =
  let open Gen in
  let* shard_id = int_range 0 1_000 in
  let* shard_host = name in
  let* shard_port = int_range 0 65_535 in
  return { Wire.shard_id; shard_host; shard_port }

let shard_map_gen : Wire.shard_map Gen.t =
  Gen.map2
    (fun map_version shards -> { Wire.map_version; shards })
    (Gen.int_range 0 1_000)
    (Gen.list_size (Gen.int_range 0 6) shard)

let partition_texp : Wire.partition_texp Gen.t =
  let open Gen in
  let* live_rows = int_range 0 1_000_000 in
  let* min_texp = time in
  let* max_texp = time in
  return { Wire.live_rows; min_texp; max_texp }

let moved = Gen.list_size (Gen.int_range 0 4) (Gen.pair row time)

let request : Wire.request Gen.t =
  Gen.oneof
    [ Gen.map (fun s -> Wire.Exec s) name;
      Gen.map2 (fun n q -> Wire.Subscribe { name = n; query = q }) name name;
      Gen.map (fun n -> Wire.Unsubscribe n) name;
      Gen.return Wire.Stats;
      Gen.return Wire.Ping;
      Gen.return Wire.Quit;
      Gen.return Wire.Metrics;
      Gen.map (fun n -> Wire.Slow_queries n) (Gen.int_range 0 1_000);
      Gen.map3
        (fun replica_id position ctx ->
          Wire.Replicate { replica_id; position; ctx })
        name (Gen.int_range 0 1_000_000) (Gen.option trace_ctx);
      Gen.map2
        (fun sql ctx -> Wire.Exec_traced { sql; ctx })
        name trace_ctx;
      Gen.map (fun n -> Wire.Trace_recent n) (Gen.int_range 0 1_000);
      Gen.return Wire.Health;
      Gen.return Wire.Shard_map_req;
      Gen.map2
        (fun map self_id -> Wire.Shard_install { map; self_id })
        shard_map_gen (Gen.int_range 0 1_000);
      Gen.map2
        (fun sql ctx -> Wire.Exec_shard { sql; ctx })
        name (Gen.option trace_ctx);
      Gen.return Wire.Shard_ping;
      Gen.map (fun t -> Wire.Extract_moving t) name;
      Gen.map2
        (fun table ingest -> Wire.Ingest_rows { table; ingest })
        name moved;
      Gen.map (fun t -> Wire.Purge_moved t) name;
      (* v6/v7 shard-local evaluation requests *)
      Gen.map2
        (fun sql ctx -> Wire.Sketch_shard { sql; ctx })
        name (Gen.option trace_ctx);
      Gen.map2
        (fun sql ctx -> Wire.Agg_shard { sql; ctx })
        name (Gen.option trace_ctx);
      (let open Gen in
       let* sql = name in
       let* build_table = name in
       let* build_rows = moved in
       let* ctx = option trace_ctx in
       return (Wire.Join_shard { sql; build_table; build_rows; ctx }));
      (* v8: the forward-looking expiration forecast *)
      Gen.map (fun t -> Wire.Horizon t) (Gen.option name) ]

let error_code : Wire.error_code Gen.t =
  Gen.oneofl
    [ Wire.Parse_error; Wire.Exec_error; Wire.Proto_error; Wire.Timeout;
      Wire.Overloaded; Wire.Shutting_down; Wire.Version_mismatch;
      Wire.Shard_failed ]

(* Shipped WAL records reuse the durable on-disk codec; the wire must
   carry any of them.  (CREATE TABLE needs >= 1 column and the clock
   only ever advances to finite times, matching what a primary can
   log.) *)
let wal_record : Wal.record Gen.t =
  Gen.oneof
    [ Gen.map2
        (fun name columns -> Wal.Create_table { name; columns })
        name
        (Gen.list_size (Gen.int_range 1 4) name);
      Gen.map (fun n -> Wal.Drop_table n) name;
      (let open Gen in
       let* table = name in
       let* r = row in
       let* texp = time in
       return (Wal.Insert { table; tuple = Tuple.of_list r; texp }));
      (let open Gen in
       let* table = name in
       let* r = row in
       return (Wal.Delete { table; tuple = Tuple.of_list r }));
      Gen.map
        (fun n -> Wal.Advance (Time.of_int n))
        (Gen.int_range 0 1_000_000) ]

let wal_records = Gen.list_size (Gen.int_range 0 6) wal_record

let event : Wire.event Gen.t =
  Gen.oneof
    [ Gen.map3
        (fun subscription row at -> Wire.Row_expired { subscription; row; at })
        name row time;
      (let open Gen in
       let* subscription = name in
       let* row = row in
       let* texp = time in
       let* at = time in
       return (Wire.Row_appeared { subscription; row; texp; at }));
      Gen.map2 (fun subscription at -> Wire.Refreshed { subscription; at }) name time ]

let counter = Gen.int_range 0 1_000_000

let repl_stats : Wire.repl_stats Gen.t =
  let open Gen in
  let* role = oneofl [ Wire.Primary; Wire.Replica ] in
  let* position = counter in
  let* source_position = counter in
  let* lag_records = counter in
  let* clock_lag = counter in
  let* reconnects = counter in
  let* snapshots = counter in
  let* records_shipped = counter in
  let* followers = counter in
  return
    { Wire.role; position; source_position; lag_records; clock_lag;
      reconnects; snapshots; records_shipped; followers }

let stats : Wire.stats Gen.t =
  let open Gen in
  let* connections_total = counter in
  let* connections_active = counter in
  let* requests_total = counter in
  let* errors_total = counter in
  let* bytes_in = counter in
  let* bytes_out = counter in
  let* events_pushed = counter in
  let* tuples_expired = counter in
  let* latency_buckets = list_size (int_range 0 14) (pair counter counter) in
  let* repl = option repl_stats in
  return
    { Wire.connections_total; connections_active; requests_total; errors_total;
      bytes_in; bytes_out; events_pushed; tuples_expired; latency_buckets;
      repl }

let span : Wire.span Gen.t =
  let open Gen in
  let* span_name = name in
  let* span_id = int_range 1 1_000 in
  let* parent_id = option (int_range 1 1_000) in
  let* start_us = counter in
  let* duration_us = counter in
  let* labels = list_size (int_range 0 3) (pair name name) in
  return { Wire.span_name; span_id; parent_id; start_us; duration_us; labels }

let slow_query : Wire.slow_query Gen.t =
  let open Gen in
  let* statement = name in
  let* trace_id = name in
  let* total_us = counter in
  let* spans = list_size (int_range 0 5) span in
  return { Wire.statement; trace_id; total_us; spans }

(* v8 horizon payloads: the bucketed forecast travels verbatim, so any
   well-formed report (bounds and counts arrays of equal length) must
   round-trip.  Rates are i/8 floats — IEEE bits, exact. *)
let horizon_table : Expirel_obs.Horizon.table Gen.t =
  let open Gen in
  let* tname = name in
  let* n = int_range 0 5 in
  let* bounds = list_size (return n) (int_range 1 100_000) in
  let* counts = list_size (return n) (int_range 0 1_000) in
  return
    { Expirel_obs.Horizon.name = tname;
      bounds = Array.of_list bounds;
      counts = Array.of_list counts }

let horizon_report : Expirel_obs.Horizon.report Gen.t =
  let open Gen in
  let* now = counter in
  let* window = int_range 0 1_000 in
  let* fanout_events = counter in
  let* arrival_rate = map (fun i -> float_of_int i /. 8.) (int_range 0 800) in
  let* expiration_rate = map (fun i -> float_of_int i /. 8.) (int_range 0 800) in
  let* tables = list_size (int_range 0 4) horizon_table in
  return
    { Expirel_obs.Horizon.now; window; fanout_events; arrival_rate;
      expiration_rate; tables }

(* started_at travels as IEEE-754 bits, so any non-nan float round-trips
   exactly. *)
let trace_entry : Wire.trace_entry Gen.t =
  let open Gen in
  let* node = name in
  let* entry_trace_id = name in
  let* entry_name = name in
  let* started_at = map (fun i -> float_of_int i /. 16.) counter in
  let* entry_total_us = counter in
  let* entry_spans = list_size (int_range 0 5) span in
  return
    { Wire.node; entry_trace_id; entry_name; started_at; entry_total_us;
      entry_spans }

let health_level : Wire.health_level Gen.t =
  Gen.oneofl [ Wire.Health_ok; Wire.Health_degraded; Wire.Health_critical ]

let health_firing : Wire.health_firing Gen.t =
  let open Gen in
  let* rule_name = name in
  let* observed = map (fun i -> float_of_int i /. 32.) counter in
  let* firing_level = health_level in
  let* rule_help = name in
  return { Wire.rule_name; observed; firing_level; rule_help }

(* v7 slice partials: the per-group expiration slices a shard condenses
   a grouped aggregate into.  [s_fsum] travels as IEEE bits, so the
   i/8 floats round-trip exactly. *)
let slice : Expirel_exec.Partial_agg.slice Gen.t =
  let open Gen in
  let* s_texp = time in
  let* s_rows = int_range 0 1_000_000 in
  let* s_nonnull = int_range 0 1_000_000 in
  let* s_sum = value in
  let* s_fsum = map (fun i -> float_of_int i /. 8.) (int_range (-800) 800) in
  let* s_min = value in
  let* s_max = value in
  return
    { Expirel_exec.Partial_agg.s_texp; s_rows; s_nonnull; s_sum; s_fsum;
      s_min; s_max }

let agg_group : Expirel_exec.Partial_agg.group Gen.t =
  Gen.map2
    (fun key slices -> { Expirel_exec.Partial_agg.key; slices })
    row
    (Gen.list_size (Gen.int_range 0 4) slice)

let response : Wire.response Gen.t =
  Gen.oneof
    [ Gen.map (fun m -> Wire.Ok_msg m) name;
      (let open Gen in
       let* columns = list_size (int_range 0 4) name in
       let* rows = list_size (int_range 0 8) (pair row time) in
       let* texp_e = time in
       let* recomputed = bool in
       return (Wire.Rows { columns; rows; texp_e; recomputed }));
      Gen.map2 (fun code message -> Wire.Err { code; message }) error_code name;
      Gen.map (fun e -> Wire.Event e) event;
      Gen.map (fun s -> Wire.Stats_reply s) stats;
      Gen.return Wire.Pong;
      Gen.return Wire.Bye;
      Gen.map2
        (fun position records -> Wire.Repl_snapshot { position; records })
        counter wal_records;
      Gen.map2
        (fun from_position records ->
          Wire.Repl_records { from_position; records })
        counter wal_records;
      Gen.map2
        (fun position now -> Wire.Repl_heartbeat { position; now })
        counter time;
      Gen.map (fun s -> Wire.Metrics_reply s) name;
      Gen.map
        (fun qs -> Wire.Slow_queries_reply qs)
        (Gen.list_size (Gen.int_range 0 4) slow_query);
      Gen.map
        (fun es -> Wire.Traces_reply es)
        (Gen.list_size (Gen.int_range 0 4) trace_entry);
      Gen.map2
        (fun level firing -> Wire.Health_reply { level; firing })
        health_level
        (Gen.list_size (Gen.int_range 0 4) health_firing);
      Gen.map
        (fun identity -> Wire.Shard_map_reply identity)
        (Gen.option
           (Gen.map2
              (fun installed_map self_id ->
                { Wire.installed_map; self_id })
              shard_map_gen (Gen.int_range 0 1_000)));
      (let open Gen in
       let* shard_id = int_range 0 1_000 in
       let* partition = partition_texp in
       let* columns = list_size (int_range 0 4) name in
       let* rows = list_size (int_range 0 8) (pair row time) in
       let* texp_e = time in
       let* recomputed = bool in
       return
         (Wire.Shard_rows
            { shard_id; partition; columns; rows; texp_e; recomputed }));
      Gen.map3
        (fun shard_id partition message ->
          Wire.Shard_ack { shard_id; partition; message })
        (Gen.int_range 0 1_000) partition_texp name;
      (let open Gen in
       let* shard_id = int_range 0 1_000 in
       let* pong_map_version = int_range 0 1_000 in
       let* now = time in
       let* partition = partition_texp in
       return (Wire.Shard_pong { shard_id; pong_map_version; now; partition }));
      Gen.map
        (fun groups -> Wire.Moved_rows groups)
        (Gen.list_size (Gen.int_range 0 4)
           (Gen.pair (Gen.int_range 0 1_000) moved));
      (* v6: an opaque sketch payload, v7: merged slice partials *)
      (let open Gen in
       let* shard_id = int_range 0 1_000 in
       let* partition = partition_texp in
       let* columns = list_size (int_range 0 4) name in
       let* payload = name in
       return (Wire.Shard_sketch { shard_id; partition; columns; payload }));
      (let open Gen in
       let* shard_id = int_range 0 1_000 in
       let* partition = partition_texp in
       let* columns = list_size (int_range 0 4) name in
       let* child_texp = time in
       let* groups = list_size (int_range 0 4) agg_group in
       return
         (Wire.Shard_agg { shard_id; partition; columns; child_texp; groups }));
      (* v8: the forecast reply carries the report verbatim *)
      Gen.map (fun r -> Wire.Horizon_reply r) horizon_report ]

(* ---------- round-trip properties ---------- *)

let roundtrip_request =
  Generators.qtest "request round-trip" ~count:500 request (fun r ->
      Wire.decode_request (Wire.encode_request r) = Ok r)

let roundtrip_response =
  Generators.qtest "response round-trip" ~count:500 response (fun r ->
      Wire.decode_response (Wire.encode_response r) = Ok r)

let frame_extracts =
  Generators.qtest "frame/extract round-trip" ~count:300 response (fun r ->
      let payload = Wire.encode_response r in
      match Wire.extract (Wire.frame payload) with
      | Wire.Frame { payload = p; consumed } ->
        p = payload && consumed = 4 + String.length payload
      | Wire.Incomplete | Wire.Malformed _ -> false)

let extract_sequence =
  Generators.qtest "extract walks concatenated frames" ~count:200
    (Gen.list_size (Gen.int_range 1 5) request)
    (fun reqs ->
      let payloads = List.map Wire.encode_request reqs in
      let buf = String.concat "" (List.map Wire.frame payloads) in
      let rec walk pos acc =
        match Wire.extract ~pos buf with
        | Wire.Frame { payload; consumed } -> walk (pos + consumed) (payload :: acc)
        | Wire.Incomplete -> List.rev acc
        | Wire.Malformed _ -> []
      in
      walk 0 [] = payloads)

(* ---------- adversarial decoding: errors, never exceptions ---------- *)

let decodes_cleanly data =
  (match Wire.decode_request data with Ok _ | Error _ -> true)
  && (match Wire.decode_response data with Ok _ | Error _ -> true)

let truncation_errors =
  Generators.qtest "truncated payloads error, never raise" ~count:300
    (Gen.pair response (Gen.int_range 0 99))
    (fun (r, cut) ->
      let payload = Wire.encode_response r in
      let n = String.length payload in
      (* every strict prefix must decode to Error (or, for requests, at
         worst a clean Ok on a coincidentally-valid prefix — never raise) *)
      let k = if n = 0 then 0 else cut mod n in
      let prefix = String.sub payload 0 k in
      decodes_cleanly prefix
      && Wire.decode_response prefix <> Ok r)

let trailing_garbage_errors =
  Generators.qtest "trailing garbage is rejected" ~count:300
    (Gen.pair request Gen.char)
    (fun (r, c) ->
      match Wire.decode_request (Wire.encode_request r ^ String.make 1 c) with
      | Error _ -> true
      | Ok _ -> false)

let junk_never_raises =
  Generators.qtest "random junk decodes cleanly" ~count:1000
    (Gen.string_size ~gen:Gen.char (Gen.int_range 0 64))
    (fun junk ->
      decodes_cleanly junk
      &&
      match Wire.extract junk with
      | Wire.Incomplete | Wire.Frame _ | Wire.Malformed _ -> true)

let test_unknown_tag () =
  let bad = Printf.sprintf "%c%c" (Char.chr Wire.version) (Char.chr 0xEE) in
  (match Wire.decode_request bad with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown request tag accepted");
  match Wire.decode_response bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown response tag accepted"

let test_wrong_version () =
  let payload = Wire.encode_request Wire.Ping in
  let bad = Bytes.of_string payload in
  Bytes.set bad 0 (Char.chr (Wire.version + 1));
  match Wire.decode_request (Bytes.to_string bad) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "future protocol version accepted"

(* A v1 payload (version byte 1, the v1 PING layout: just the tag) must
   be rejected by the v2 decoder, and [payload_version] must still read
   the foreign version so the server can answer with the typed
   [Version_mismatch] — the exact check [Server] performs. *)
let test_v1_payload_detected () =
  let v1_ping = "\x01\x05" in
  (match Wire.decode_request v1_ping with
   | Error reason ->
     if not (String.length reason > 0) then Alcotest.fail "empty reason"
   | Ok _ -> Alcotest.fail "v1 payload accepted by a v2 decoder");
  Alcotest.(check (option int)) "payload_version reads v1" (Some 1)
    (Wire.payload_version v1_ping);
  Alcotest.(check (option int)) "payload_version on empty" None
    (Wire.payload_version "");
  (* The typed error itself round-trips, so a v1 peer can at least
     render it (the Err layout is stable across versions). *)
  let err = Wire.Err { code = Wire.Version_mismatch; message = "v1 vs v2" } in
  match Wire.decode_response (Wire.encode_response err) with
  | Ok r when r = err -> ()
  | Ok _ | Error _ -> Alcotest.fail "Version_mismatch error does not round-trip"

let test_empty_payload () =
  (match Wire.decode_request "" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "empty request accepted");
  match Wire.decode_response "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty response accepted"

let test_oversized_length_prefix () =
  (* A length prefix beyond [max_frame] means the stream is hostile or
     desynchronised: Malformed, not a 16 MiB+ allocation. *)
  let b = Buffer.create 4 in
  Buffer.add_int32_be b (Int32.of_int (Wire.max_frame + 1));
  Buffer.add_string b "xxxx";
  match Wire.extract (Buffer.contents b) with
  | Wire.Malformed _ -> ()
  | Wire.Incomplete -> Alcotest.fail "oversized prefix treated as incomplete"
  | Wire.Frame _ -> Alcotest.fail "oversized prefix produced a frame"

let test_short_header_incomplete () =
  (* Fewer than 4 bytes is just a partial read, not an error. *)
  List.iter
    (fun s ->
      match Wire.extract s with
      | Wire.Incomplete -> ()
      | Wire.Frame _ | Wire.Malformed _ ->
        Alcotest.fail "short header not reported Incomplete")
    [ ""; "\x00"; "\x00\x00\x00" ]

(* Cutting a Shard_install anywhere inside its serialized shard map
   must decode to Error — a half-read map silently accepted would
   misroute every write. *)
let truncated_shard_map_errors =
  Generators.qtest "truncated shard map errors, never raises" ~count:300
    (Gen.triple shard_map_gen (Gen.int_range 0 1_000) (Gen.int_range 0 9999))
    (fun (map, self_id, cut) ->
      let payload =
        Wire.encode_request (Wire.Shard_install { map; self_id })
      in
      let n = String.length payload in
      let k = if n = 0 then 0 else cut mod n in
      let prefix = String.sub payload 0 k in
      decodes_cleanly prefix
      && Wire.decode_request prefix <> Ok (Wire.Shard_install { map; self_id }))

(* A hostile shard count in a Shard_install body must be rejected
   before any proportional allocation, like the Rows case below. *)
let test_hostile_shard_count () =
  let b = Buffer.create 16 in
  Buffer.add_char b (Char.chr Wire.version);
  Buffer.add_char b (Char.chr 14) (* Shard_install tag *);
  Buffer.add_int64_be b 1L (* map_version *);
  Buffer.add_int32_be b 0x7FFFFFFFl (* shard count *);
  match Wire.decode_request (Buffer.contents b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "hostile shard count accepted"

(* Routing is a wire-level contract (every coordinator must agree), so
   pin it down: the owner is always a shard in the map, the choice is
   deterministic, and it depends only on the key, not the row tail. *)
let shard_owner_in_map =
  Generators.qtest "shard_owner picks a shard from the map" ~count:300
    (Gen.pair
       (Gen.map2
          (fun map_version shards -> { Wire.map_version; shards })
          (Gen.int_range 0 1_000)
          (Gen.list_size (Gen.int_range 1 6) shard))
       value)
    (fun (map, key) ->
      let owner = Wire.shard_owner map key in
      owner = Wire.shard_owner map key
      && List.exists
           (fun (s : Wire.shard) -> s.shard_id = owner)
           map.Wire.shards)

let test_hostile_list_count () =
  (* A Rows body claiming millions of rows in a tiny payload must be
     rejected before any proportional allocation happens. *)
  let b = Buffer.create 16 in
  Buffer.add_char b (Char.chr Wire.version);
  Buffer.add_char b (Char.chr 2) (* Rows tag *);
  Buffer.add_int32_be b 0x7FFFFFFFl (* column count *) ;
  match Wire.decode_response (Buffer.contents b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "hostile element count accepted"

let suite =
  [ roundtrip_request;
    roundtrip_response;
    frame_extracts;
    extract_sequence;
    truncation_errors;
    trailing_garbage_errors;
    junk_never_raises;
    truncated_shard_map_errors;
    shard_owner_in_map;
    Alcotest.test_case "hostile shard count" `Quick test_hostile_shard_count;
    Alcotest.test_case "unknown tag" `Quick test_unknown_tag;
    Alcotest.test_case "wrong version" `Quick test_wrong_version;
    Alcotest.test_case "v1 payload detected" `Quick test_v1_payload_detected;
    Alcotest.test_case "empty payload" `Quick test_empty_payload;
    Alcotest.test_case "oversized length prefix" `Quick test_oversized_length_prefix;
    Alcotest.test_case "short header is incomplete" `Quick test_short_header_incomplete;
    Alcotest.test_case "hostile list count" `Quick test_hostile_list_count ]
