open Expirel_core
open Expirel_sqlx

let string_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let exec t sql =
  match Interp.exec_sql t sql with
  | Ok outcome -> outcome
  | Error msg -> Alcotest.failf "%S failed: %s" sql msg

let expect_error t sql =
  match Interp.exec_sql t sql with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "expected %S to fail" sql

let rows = function
  | Interp.Rows { relation; _ } -> relation
  | Interp.Msg m -> Alcotest.failf "expected rows, got message %S" m

let setup_figure1 () =
  let t = Interp.create () in
  List.iter
    (fun sql -> ignore (exec t sql))
    [ "CREATE TABLE pol (uid, deg)";
      "CREATE TABLE el (uid, deg)";
      "INSERT INTO pol VALUES (1, 25) EXPIRES 10";
      "INSERT INTO pol VALUES (2, 25) EXPIRES 15";
      "INSERT INTO pol VALUES (3, 35) EXPIRES 10";
      "INSERT INTO el VALUES (1, 75) EXPIRES 5";
      "INSERT INTO el VALUES (2, 85) EXPIRES 3";
      "INSERT INTO el VALUES (4, 90) EXPIRES 2" ];
  t

let test_end_to_end_figure2 () =
  let t = setup_figure1 () in
  Alcotest.(check int) "pi_2(Pol) at 0 has 2 rows" 2
    (Relation.cardinal (rows (exec t "SELECT deg FROM pol")));
  ignore (exec t "ADVANCE TO 10");
  let r = rows (exec t "SELECT deg FROM pol") in
  Alcotest.(check int) "at 10 one row" 1 (Relation.cardinal r);
  Alcotest.(check bool) "it is <25>" true (Relation.mem (Tuple.ints [ 25 ]) r)

let test_join_query () =
  let t = setup_figure1 () in
  Alcotest.(check int) "join at 0" 2
    (Relation.cardinal
       (rows (exec t "SELECT * FROM pol JOIN el ON pol.uid = el.uid")));
  ignore (exec t "ADVANCE TO 3");
  Alcotest.(check int) "join at 3" 1
    (Relation.cardinal
       (rows (exec t "SELECT * FROM pol JOIN el ON pol.uid = el.uid")))

let test_histogram_view_lifecycle () =
  let t = setup_figure1 () in
  (match exec t "CREATE VIEW hist AS SELECT deg, COUNT(*) FROM pol GROUP BY deg" with
   | Interp.Msg m ->
     Alcotest.(check bool) "reports texp(e) = 10" true
       (string_contains m "texp(e) = 10")
   | Interp.Rows _ -> Alcotest.fail "expected message");
  (match exec t "SHOW VIEW hist" with
   | Interp.Rows { relation; recomputed; _ } ->
     Alcotest.(check int) "two rows" 2 (Relation.cardinal relation);
     Alcotest.(check bool) "no recompute yet" false recomputed
   | Interp.Msg _ -> Alcotest.fail "rows");
  ignore (exec t "ADVANCE TO 12");
  (match exec t "SHOW VIEW hist" with
   | Interp.Rows { relation; recomputed; _ } ->
     Alcotest.(check bool) "auto-recomputed" true recomputed;
     Alcotest.(check bool) "fresh contents <25,1>" true
       (Relation.mem (Tuple.ints [ 25; 1 ]) relation);
     Alcotest.(check int) "one row" 1 (Relation.cardinal relation)
   | Interp.Msg _ -> Alcotest.fail "rows")

let test_monotonic_view_never_recomputes () =
  let t = setup_figure1 () in
  (match exec t "CREATE VIEW j AS SELECT pol.uid FROM pol JOIN el ON pol.uid = el.uid" with
   | Interp.Msg m ->
     Alcotest.(check bool) "monotonic reported" true
       (string_contains m "monotonic: never recomputes")
   | Interp.Rows _ -> Alcotest.fail "message");
  ignore (exec t "ADVANCE TO 20");
  match exec t "SHOW VIEW j" with
  | Interp.Rows { relation; recomputed; _ } ->
    Alcotest.(check bool) "served from materialisation" false recomputed;
    Alcotest.(check int) "empty by expiration" 0 (Relation.cardinal relation)
  | Interp.Msg _ -> Alcotest.fail "rows"

let test_except_view () =
  let t = setup_figure1 () in
  ignore (exec t "CREATE VIEW d AS SELECT uid FROM pol EXCEPT SELECT uid FROM el");
  ignore (exec t "ADVANCE TO 5");
  match exec t "SHOW VIEW d" with
  | Interp.Rows { relation; recomputed; _ } ->
    Alcotest.(check bool) "recomputed (texp was 3)" true recomputed;
    Alcotest.(check int) "three rows at 5" 3 (Relation.cardinal relation)
  | Interp.Msg _ -> Alcotest.fail "rows"

let test_ttl_and_delete () =
  let t = Interp.create () in
  ignore (exec t "CREATE TABLE s (sid, uid)");
  ignore (exec t "ADVANCE TO 100");
  ignore (exec t "INSERT INTO s VALUES (1, 7) TTL 30");
  ignore (exec t "INSERT INTO s VALUES (2, 8) TTL 5");
  ignore (exec t "ADVANCE TO 110");
  Alcotest.(check int) "ttl 5 expired" 1
    (Relation.cardinal (rows (exec t "SELECT * FROM s")));
  (match exec t "DELETE FROM s WHERE uid = 7" with
   | Interp.Msg m -> Alcotest.(check string) "deleted" "1 tuple(s) deleted" m
   | Interp.Rows _ -> Alcotest.fail "message");
  Alcotest.(check int) "empty" 0 (Relation.cardinal (rows (exec t "SELECT * FROM s")))

let test_errors () =
  let t = Interp.create () in
  expect_error t "SELECT a FROM missing";
  expect_error t "INSERT INTO missing VALUES (1)";
  ignore (exec t "CREATE TABLE t (a)");
  expect_error t "CREATE TABLE t (a)";
  expect_error t "INSERT INTO t VALUES (1, 2)";
  ignore (exec t "ADVANCE TO 5");
  expect_error t "INSERT INTO t VALUES (1) EXPIRES 3";
  expect_error t "ADVANCE TO 1";
  expect_error t "SHOW VIEW missing";
  expect_error t "SELECT nonsense FROM t WHERE";
  (* Execution continues after failures inside scripts. *)
  let results = Interp.exec_script t "BROKEN; SHOW NOW;" in
  Alcotest.(check int) "parse error aborts the script" 1 (List.length results);
  let results = Interp.exec_script t "SELECT x FROM t; SHOW NOW;" in
  Alcotest.(check int) "semantic error does not" 2 (List.length results);
  (match results with
   | [ Error _; Ok (Interp.Msg "5") ] -> ()
   | _ -> Alcotest.fail "expected error then clock")

let test_at_queries () =
  let t = setup_figure1 () in
  (* Query the known future: evaluate the figure-1 data as of time 10. *)
  Alcotest.(check int) "future projection has one row" 1
    (Relation.cardinal (rows (exec t "SELECT deg FROM pol AT 10")));
  Alcotest.(check int) "present unchanged" 2
    (Relation.cardinal (rows (exec t "SELECT deg FROM pol")));
  ignore (exec t "ADVANCE TO 8");
  expect_error t "SELECT deg FROM pol AT 5"

let test_sql_triggers () =
  let t = setup_figure1 () in
  (match exec t "CREATE TRIGGER audit ON el" with
   | Interp.Msg m -> Alcotest.(check string) "created" "trigger audit on el created" m
   | Interp.Rows _ -> Alcotest.fail "message");
  ignore (exec t "ADVANCE TO 4");
  (match exec t "SHOW TRIGGERS" with
   | Interp.Msg log ->
     Alcotest.(check bool) "el expirations logged" true
       (string_contains log "audit: el<4, 90> expired at 2"
        && string_contains log "audit: el<2, 85> expired at 3");
     Alcotest.(check bool) "pol not subscribed" false (string_contains log "pol")
   | Interp.Rows _ -> Alcotest.fail "log");
  ignore (exec t "DROP TRIGGER audit");
  ignore (exec t "ADVANCE TO 20");
  (match exec t "SHOW TRIGGERS" with
   | Interp.Msg log ->
     Alcotest.(check bool) "no new firings after drop" false
       (string_contains log "expired at 5")
   | Interp.Rows _ -> Alcotest.fail "log")

let test_maintained_view () =
  let t = setup_figure1 () in
  ignore (exec t "CREATE MAINTAINED VIEW hist AS \
                  SELECT deg, COUNT(*) FROM pol GROUP BY deg");
  (* Updates flow into the view immediately, unlike a plain view. *)
  ignore (exec t "INSERT INTO pol VALUES (7, 25) EXPIRES 40");
  (match exec t "SHOW VIEW hist" with
   | Interp.Rows { relation; recomputed; _ } ->
     Alcotest.(check bool) "sees the new tuple" true
       (Relation.mem (Tuple.ints [ 25; 3 ]) relation);
     Alcotest.(check bool) "never reports recompute" false recomputed
   | Interp.Msg _ -> Alcotest.fail "rows");
  (* And the clock. *)
  ignore (exec t "ADVANCE TO 16");
  (match exec t "SHOW VIEW hist" with
   | Interp.Rows { relation; _ } ->
     Alcotest.(check bool) "only <7,25> left, count 1" true
       (Relation.mem (Tuple.ints [ 25; 1 ]) relation);
     Alcotest.(check int) "one group" 1 (Relation.cardinal relation)
   | Interp.Msg _ -> Alcotest.fail "rows");
  (match exec t "REFRESH VIEW hist" with
   | Interp.Msg m ->
     Alcotest.(check bool) "refresh is a no-op" true
       (string_contains m "always current")
   | Interp.Rows _ -> Alcotest.fail "message");
  expect_error t "CREATE VIEW hist AS SELECT uid FROM pol";
  (match exec t "SHOW VIEWS" with
   | Interp.Msg m ->
     Alcotest.(check bool) "flagged as maintained" true
       (string_contains m "hist (maintained)")
   | Interp.Rows _ -> Alcotest.fail "message")

let test_order_limit_having () =
  let t = setup_figure1 () in
  let listing outcome =
    match outcome with
    | Interp.Rows { listing; _ } ->
      List.map (fun (tuple, _) -> Tuple.to_string tuple) listing
    | Interp.Msg m -> Alcotest.failf "expected rows, got %S" m
  in
  Alcotest.(check (list string)) "ORDER BY deg DESC, uid"
    [ "<3, 35>"; "<1, 25>"; "<2, 25>" ]
    (listing (exec t "SELECT uid, deg FROM pol ORDER BY deg DESC, uid"));
  Alcotest.(check (list string)) "LIMIT truncates after ordering"
    [ "<3, 35>" ]
    (listing (exec t "SELECT uid, deg FROM pol ORDER BY deg DESC LIMIT 1"));
  Alcotest.(check (list string)) "HAVING keeps multi-member groups"
    [ "<25, 2>" ]
    (listing (exec t "SELECT deg, COUNT(*) FROM pol GROUP BY deg \
                      HAVING COUNT(*) > 1"));
  Alcotest.(check (list string)) "HAVING on a group column"
    [ "<35, 1>" ]
    (listing (exec t "SELECT deg, COUNT(*) FROM pol GROUP BY deg \
                      HAVING deg > 30"));
  expect_error t "SELECT uid FROM pol WHERE COUNT(*) > 1";
  expect_error t "SELECT uid FROM pol HAVING uid > 1";
  expect_error t "SELECT deg, COUNT(*) FROM pol GROUP BY deg HAVING SUM(uid) > 1";
  expect_error t "SELECT deg, COUNT(*) FROM pol GROUP BY deg HAVING uid > 1";
  expect_error t "SELECT uid FROM pol ORDER BY nonsense"

(* The shared ORDER BY column resolver (Lower.order_by_position): exact
   labels first, then a UNIQUE ".column" suffix for bare names; anything
   ambiguous or absent is an error, never a silent first-match pick. *)
let test_order_by_resolver () =
  let t = setup_figure1 () in
  let expect_error_containing t sql needle =
    match Interp.exec_sql t sql with
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: error mentions %S (got %S)" sql needle msg)
        true
        (string_contains msg needle)
    | Ok _ -> Alcotest.failf "expected %S to fail" sql
  in
  let listing outcome =
    match outcome with
    | Interp.Rows { listing; _ } ->
      List.map (fun (tuple, _) -> Tuple.to_string tuple) listing
    | Interp.Msg m -> Alcotest.failf "expected rows, got %S" m
  in
  (* Join output labels are qualified (both tables expose uid and deg):
     a qualified reference resolves, position-exactly. *)
  Alcotest.(check (list string)) "qualified ORDER BY on a join"
    [ "<2, 25, 2, 85>"; "<1, 25, 1, 75>" ]
    (listing
       (exec t
          "SELECT * FROM pol JOIN el ON pol.uid = el.uid ORDER BY el.deg DESC"));
  (* A bare name matching several qualified labels is ambiguous — the
     old suffix matchers silently took the first hit. *)
  expect_error_containing t
    "SELECT * FROM pol JOIN el ON pol.uid = el.uid ORDER BY deg" "ambiguous";
  expect_error_containing t
    "SELECT * FROM pol JOIN el ON pol.uid = el.uid ORDER BY uid" "ambiguous";
  (* A projected join keeps qualified labels; a bare name that suffixes
     exactly one of them resolves (here only el.uid survives the
     projection). *)
  Alcotest.(check (list string)) "unique suffix match resolves"
    [ "<25, 2>"; "<25, 1>" ]
    (listing
       (exec t
          "SELECT pol.deg, el.uid FROM pol JOIN el ON pol.uid = el.uid \
           ORDER BY uid DESC"));
  expect_error_containing t "SELECT uid FROM pol ORDER BY nonsense" "unknown";
  expect_error_containing t
    "SELECT * FROM pol JOIN el ON pol.uid = el.uid ORDER BY missing" "unknown";
  (* Qualified references to absent columns are unknown, not suffixed. *)
  expect_error_containing t "SELECT * FROM pol ORDER BY el.deg" "unknown"

let test_sql_constraints () =
  let t = setup_figure1 () in
  (match exec t "CREATE CONSTRAINT coverage ON SELECT uid FROM pol MIN 2" with
   | Interp.Msg m -> Alcotest.(check string) "created" "constraint coverage created" m
   | Interp.Rows _ -> Alcotest.fail "message");
  (match exec t "SHOW CONSTRAINTS" with
   | Interp.Msg m ->
     Alcotest.(check bool) "prediction shown" true
       (string_contains m "coverage: 3 row(s), min 2 — breaks at 10")
   | Interp.Rows _ -> Alcotest.fail "status");
  (* Advancing across the predicted time reports the transition. *)
  (match exec t "ADVANCE TO 20" with
   | Interp.Msg m ->
     Alcotest.(check bool) "violation reported" true
       (string_contains m "CONSTRAINT VIOLATED: coverage!min at 10")
   | Interp.Rows _ -> Alcotest.fail "advance");
  (match exec t "SHOW CONSTRAINTS" with
   | Interp.Msg m ->
     Alcotest.(check bool) "violated now" true (string_contains m "VIOLATED NOW")
   | Interp.Rows _ -> Alcotest.fail "status");
  ignore (exec t "DROP CONSTRAINT coverage");
  expect_error t "DROP CONSTRAINT coverage";
  (match exec t "SHOW CONSTRAINTS" with
   | Interp.Msg m -> Alcotest.(check string) "empty" "(no constraints)" m
   | Interp.Rows _ -> Alcotest.fail "status");
  expect_error t "CREATE CONSTRAINT bad ON SELECT uid FROM pol MIN 0"

let test_render () =
  let t = setup_figure1 () in
  let text = Interp.render (exec t "SELECT deg FROM pol") in
  Alcotest.(check bool) "renders a bordered table" true
    (string_contains text "| texp | deg |")

let suite =
  [ Alcotest.test_case "figure 2 end to end" `Quick test_end_to_end_figure2;
    Alcotest.test_case "joins" `Quick test_join_query;
    Alcotest.test_case "non-monotonic view recomputes on expiry" `Quick
      test_histogram_view_lifecycle;
    Alcotest.test_case "monotonic view never recomputes" `Quick
      test_monotonic_view_never_recomputes;
    Alcotest.test_case "EXCEPT view over the paper's data" `Quick test_except_view;
    Alcotest.test_case "TTL inserts and deletes" `Quick test_ttl_and_delete;
    Alcotest.test_case "error handling" `Quick test_errors;
    Alcotest.test_case "AT: querying the known future" `Quick test_at_queries;
    Alcotest.test_case "ORDER BY / LIMIT / HAVING" `Quick test_order_limit_having;
    Alcotest.test_case "ORDER BY column resolver" `Quick test_order_by_resolver;
    Alcotest.test_case "SQL constraints with prediction" `Quick test_sql_constraints;
    Alcotest.test_case "SQL-level expiration triggers" `Quick test_sql_triggers;
    Alcotest.test_case "maintained views track updates and time" `Quick
      test_maintained_view;
    Alcotest.test_case "rendering" `Quick test_render ]
