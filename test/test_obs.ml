(* The observability substrate: thread-safe instruments, the metric
   registry, per-request traces, the slow-query ring and the Prometheus
   renderer — including regressions for the two metrics bugs this layer
   replaced (mutex leaked on a raising critical section; missing 500 ms
   latency bucket). *)

open Expirel_obs

(* ---------- instruments ---------- *)

let test_counter () =
  let c = Instrument.Counter.create () in
  Instrument.Counter.incr c;
  Instrument.Counter.add c 41;
  Alcotest.(check int) "value" 42 (Instrument.Counter.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Counter.add: negative increment") (fun () ->
      Instrument.Counter.add c (-1));
  Alcotest.(check int) "unchanged after reject" 42 (Instrument.Counter.value c)

let test_gauge () =
  let g = Instrument.Gauge.create () in
  Instrument.Gauge.set g 7;
  Instrument.Gauge.add g (-10);
  Alcotest.(check int) "negative allowed" (-3) (Instrument.Gauge.value g)

(* Regression: the original server histogram jumped from 250 ms straight
   to 1 s, so every request between 250 ms and 1 s was reported as
   "<= 1s".  The default bounds must include 500 ms, and an observation
   between 250 ms and 500 ms must land there, not in the 1 s bucket. *)
let test_latency_bucket_gap () =
  let bounds = Instrument.Histogram.default_latency_bounds_us in
  Alcotest.(check bool) "500ms bound present" true
    (Array.exists (fun b -> b = 500_000) bounds);
  let sorted = Array.for_all (fun i -> i = 0 || bounds.(i - 1) < bounds.(i))
      (Array.init (Array.length bounds) Fun.id)
  in
  Alcotest.(check bool) "bounds strictly increasing" true sorted;
  let h = Instrument.Histogram.create () in
  Instrument.Histogram.observe h 400_000;
  Instrument.Histogram.observe h 600_000;
  let s = Instrument.Histogram.snapshot h in
  let count_at bound =
    let i = ref (-1) in
    Array.iteri (fun j b -> if b = bound then i := j) s.bounds;
    s.counts.(!i)
  in
  Alcotest.(check int) "400ms lands in the 500ms bucket" 1 (count_at 500_000);
  Alcotest.(check int) "600ms lands in the 1s bucket" 1 (count_at 1_000_000)

let test_histogram_edges () =
  let h = Instrument.Histogram.create ~bounds:[| 10; 20 |] () in
  List.iter (Instrument.Histogram.observe h) [ 10; 11; 21; max_int ];
  let s = Instrument.Histogram.snapshot h in
  Alcotest.(check (list int)) "bucketing at the bound is inclusive"
    [ 1; 1; 2 ] (Array.to_list s.counts);
  Alcotest.(check int) "last bound is the catch-all" max_int
    s.bounds.(Array.length s.bounds - 1);
  Alcotest.(check int) "count" 4 s.count;
  Alcotest.check_raises "unsorted bounds rejected"
    (Invalid_argument "Histogram.create: bounds not strictly increasing")
    (fun () -> ignore (Instrument.Histogram.create ~bounds:[| 5; 5 |] ()))

(* Regression for the Metrics.locked bug: an exception inside a critical
   section (here, Family arity validation) must release the mutex, so
   the next well-formed call succeeds instead of deadlocking. *)
let test_family_raise_no_deadlock () =
  let fam =
    Instrument.Family.create ~labels:[ "mode" ]
      ~make:Instrument.Counter.create
  in
  (try ignore (Instrument.Family.labelled fam [ "a"; "b" ])
   with Invalid_argument _ -> ());
  (* Run the retry on another thread with a watchdog: if the mutex
     leaked, this thread blocks forever; we fail instead of hanging the
     suite. *)
  let done_ = Atomic.make false in
  let t =
    Thread.create
      (fun () ->
        Instrument.Counter.incr (Instrument.Family.labelled fam [ "eager" ]);
        Atomic.set done_ true)
      ()
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (Atomic.get done_)) && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  Alcotest.(check bool) "family usable after raising call" true
    (Atomic.get done_);
  Thread.join t;
  Alcotest.(check int) "counter recorded" 1
    (Instrument.Counter.value (Instrument.Family.labelled fam [ "eager" ]))

let test_family_fold_sorted () =
  let fam =
    Instrument.Family.create ~labels:[ "op" ] ~make:Instrument.Counter.create
  in
  List.iter
    (fun v -> Instrument.Counter.incr (Instrument.Family.labelled fam [ v ]))
    [ "join"; "base"; "select" ];
  let order =
    Instrument.Family.fold fam ~init:[] ~f:(fun bindings _ acc ->
        acc @ [ List.assoc "op" bindings ])
  in
  Alcotest.(check (list string)) "fold sorted by label values"
    [ "base"; "join"; "select" ] order

(* 8 threads × 10_000 operations against one counter, one gauge and one
   histogram, with a 9th thread snapshotting throughout.  Totals must be
   exact and every snapshot internally consistent. *)
let test_hammer () =
  let threads = 8 and per_thread = 10_000 in
  let c = Instrument.Counter.create () in
  let g = Instrument.Gauge.create () in
  let h = Instrument.Histogram.create ~bounds:[| 4; 16; 64 |] () in
  let stop = Atomic.make false in
  let inconsistent = Atomic.make 0 in
  let reader =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          let s = Instrument.Histogram.snapshot h in
          if Array.fold_left ( + ) 0 s.counts <> s.count then
            Atomic.incr inconsistent;
          Thread.yield ()
        done)
      ()
  in
  let workers =
    List.init threads (fun i ->
        Thread.create
          (fun () ->
            for j = 1 to per_thread do
              Instrument.Counter.incr c;
              Instrument.Gauge.add g (if j mod 2 = 0 then 1 else -1);
              Instrument.Histogram.observe h ((i + j) mod 100)
            done)
          ())
  in
  List.iter Thread.join workers;
  Atomic.set stop true;
  Thread.join reader;
  Alcotest.(check int) "no torn snapshots" 0 (Atomic.get inconsistent);
  Alcotest.(check int) "counter exact" (threads * per_thread)
    (Instrument.Counter.value c);
  Alcotest.(check int) "gauge exact" 0 (Instrument.Gauge.value g);
  let s = Instrument.Histogram.snapshot h in
  Alcotest.(check int) "histogram count exact" (threads * per_thread) s.count;
  Alcotest.(check int) "histogram sum exact"
    (List.init threads (fun i ->
         List.init per_thread (fun j -> (i + j + 1) mod 100)
         |> List.fold_left ( + ) 0)
     |> List.fold_left ( + ) 0)
    s.sum

(* ---------- registry ---------- *)

let test_registry_duplicate () =
  let reg = Registry.create () in
  ignore (Registry.counter reg ~name:"dup" ~help:"");
  Alcotest.check_raises "duplicate name rejected"
    (Invalid_argument "Registry: duplicate metric name dup") (fun () ->
      ignore (Registry.gauge reg ~name:"dup" ~help:""))

(* A raising polled callback is skipped — the metric reports no samples
   and the registry stays collectable, collection after collection. *)
let test_registry_raising_callback () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~name:"good" ~help:"" in
  Instrument.Counter.add c 3;
  Registry.gauge_fun reg ~name:"bad" ~help:"" (fun () -> raise Not_found);
  let healthy = ref 0.0 in
  Registry.gauge_fun reg ~name:"healthy" ~help:"" (fun () -> !healthy);
  for i = 1 to 3 do
    healthy := float_of_int i;
    let metrics = Registry.collect reg in
    let find name = List.find (fun (m : Registry.metric) -> m.name = name) metrics in
    Alcotest.(check int) "raising metric has no samples" 0
      (List.length (find "bad").samples);
    (match (find "good").samples with
     | [ ([], Registry.Counter_sample 3) ] -> ()
     | _ -> Alcotest.fail "stored counter sampled wrong");
    match (find "healthy").samples with
    | [ ([], Registry.Gauge_sample v) ] ->
      Alcotest.(check (float 0.0)) "later callbacks still polled"
        (float_of_int i) v
    | _ -> Alcotest.fail "healthy gauge sampled wrong"
  done

let test_registry_order () =
  let reg = Registry.create () in
  ignore (Registry.counter reg ~name:"first" ~help:"");
  ignore (Registry.gauge reg ~name:"second" ~help:"");
  ignore (Registry.histogram reg ~name:"third" ~help:"" ());
  Alcotest.(check (list string)) "collect in registration order"
    [ "first"; "second"; "third" ]
    (List.map (fun (m : Registry.metric) -> m.name) (Registry.collect reg))

(* ---------- traces ---------- *)

let test_trace_spans () =
  let tr = Trace.create () in
  let result =
    Trace.span (Some tr) "outer" (fun () ->
        Trace.span (Some tr) "inner" (fun () -> 21) * 2)
  in
  Alcotest.(check int) "value passed through" 42 result;
  (match Trace.spans tr with
   | [ inner; outer ] ->
     Alcotest.(check string) "child recorded first" "inner" inner.Trace.name;
     Alcotest.(check string) "parent second" "outer" outer.Trace.name;
     Alcotest.(check bool) "parent covers child" true
       (outer.Trace.start_us <= inner.Trace.start_us
        && outer.Trace.duration_us >= inner.Trace.duration_us)
   | spans ->
     Alcotest.failf "expected 2 spans, got %d" (List.length spans));
  Alcotest.(check int) "span None is a passthrough" 7
    (Trace.span None "ignored" (fun () -> 7))

let test_trace_records_on_raise () =
  let tr = Trace.create () in
  (try Trace.span (Some tr) "boom" (fun () -> failwith "x")
   with Failure _ -> ());
  match Trace.spans tr with
  | [ { Trace.name = "boom"; _ } ] -> ()
  | _ -> Alcotest.fail "raising span not recorded"

(* ---------- slow log ---------- *)

let test_slow_log_ranking () =
  let log = Slow_log.create ~capacity:8 () in
  List.iteri
    (fun i us ->
      Slow_log.record log
        ~statement:(Printf.sprintf "q%d" i)
        ~total_us:us ~spans:[])
    [ 30; 100; 10; 100; 50 ];
  let top = Slow_log.slowest log 3 in
  Alcotest.(check (list string)) "slowest first, ties newest first"
    [ "q3"; "q1"; "q4" ]
    (List.map (fun (e : Slow_log.entry) -> e.statement) top);
  Alcotest.(check int) "asking beyond capacity is clamped" 5
    (List.length (Slow_log.slowest log 99))

let test_slow_log_threshold_and_eviction () =
  let log = Slow_log.create ~capacity:2 ~threshold_us:20 () in
  Slow_log.record log ~statement:"fast" ~total_us:19 ~spans:[];
  Alcotest.(check int) "below threshold skipped" 0
    (List.length (Slow_log.slowest log 10));
  List.iter
    (fun (s, us) -> Slow_log.record log ~statement:s ~total_us:us ~spans:[])
    [ ("a", 100); ("b", 30); ("c", 40) ];
  Alcotest.(check (list string)) "ring evicts oldest, not slowest"
    [ "c"; "b" ]
    (List.map (fun (e : Slow_log.entry) -> e.statement)
       (Slow_log.slowest log 10))

(* ---------- prometheus rendering ---------- *)

let test_prometheus_render () =
  let reg = Registry.create () in
  let c =
    Registry.counter reg ~name:"expirel_widgets_total" ~help:"Widgets\nmade"
  in
  Instrument.Counter.add c 3;
  let h =
    Registry.histogram reg ~scale:1e-6 ~bounds:[| 1_000; 500_000 |]
      ~name:"expirel_lat_seconds" ~help:"lat" ()
  in
  Instrument.Histogram.observe h 400_000;
  Instrument.Histogram.observe h 999;
  let fam =
    Registry.counter_family reg ~name:"expirel_modes_total" ~help:"modes"
      ~labels:[ "mode" ]
  in
  Instrument.Counter.incr
    (Instrument.Family.labelled fam [ "ea\"ger\\x\ny" ]);
  let text = Prometheus.render (Registry.collect reg) in
  let has line = List.mem line (String.split_on_char '\n' text) in
  List.iter
    (fun line -> Alcotest.(check bool) ("has: " ^ line) true (has line))
    [ "# HELP expirel_widgets_total Widgets\\nmade";
      "# TYPE expirel_widgets_total counter";
      "expirel_widgets_total 3";
      "# TYPE expirel_lat_seconds histogram";
      "expirel_lat_seconds_bucket{le=\"0.001\"} 1";
      (* buckets are cumulative *)
      "expirel_lat_seconds_bucket{le=\"0.5\"} 2";
      "expirel_lat_seconds_bucket{le=\"+Inf\"} 2";
      "expirel_lat_seconds_count 2";
      (* label values escape backslash, quote and newline *)
      "expirel_modes_total{mode=\"ea\\\"ger\\\\x\\ny\"} 1" ];
  (* _sum is scaled to seconds *)
  Alcotest.(check bool) "sum scaled" true
    (List.exists
       (fun l ->
         String.length l > 24
         && String.sub l 0 24 = "expirel_lat_seconds_sum "
         && float_of_string (String.sub l 24 (String.length l - 24))
            -. 0.400999 < 1e-6)
       (String.split_on_char '\n' text))

let suite =
  [ Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "gauge" `Quick test_gauge;
    Alcotest.test_case "latency bucket gap (500ms)" `Quick
      test_latency_bucket_gap;
    Alcotest.test_case "histogram edges" `Quick test_histogram_edges;
    Alcotest.test_case "family raise releases mutex" `Quick
      test_family_raise_no_deadlock;
    Alcotest.test_case "family fold order" `Quick test_family_fold_sorted;
    Alcotest.test_case "multi-thread hammer" `Quick test_hammer;
    Alcotest.test_case "registry duplicate names" `Quick
      test_registry_duplicate;
    Alcotest.test_case "registry raising callback" `Quick
      test_registry_raising_callback;
    Alcotest.test_case "registry collection order" `Quick test_registry_order;
    Alcotest.test_case "trace spans" `Quick test_trace_spans;
    Alcotest.test_case "trace records on raise" `Quick
      test_trace_records_on_raise;
    Alcotest.test_case "slow log ranking" `Quick test_slow_log_ranking;
    Alcotest.test_case "slow log threshold + eviction" `Quick
      test_slow_log_threshold_and_eviction;
    Alcotest.test_case "prometheus rendering" `Quick test_prometheus_render ]
