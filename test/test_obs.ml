(* The observability substrate: thread-safe instruments, the metric
   registry, per-request traces, the slow-query ring and the Prometheus
   renderer — including regressions for the two metrics bugs this layer
   replaced (mutex leaked on a raising critical section; missing 500 ms
   latency bucket). *)

open Expirel_obs

(* ---------- instruments ---------- *)

let test_counter () =
  let c = Instrument.Counter.create () in
  Instrument.Counter.incr c;
  Instrument.Counter.add c 41;
  Alcotest.(check int) "value" 42 (Instrument.Counter.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Counter.add: negative increment") (fun () ->
      Instrument.Counter.add c (-1));
  Alcotest.(check int) "unchanged after reject" 42 (Instrument.Counter.value c)

let test_gauge () =
  let g = Instrument.Gauge.create () in
  Instrument.Gauge.set g 7;
  Instrument.Gauge.add g (-10);
  Alcotest.(check int) "negative allowed" (-3) (Instrument.Gauge.value g)

(* Regression: the original server histogram jumped from 250 ms straight
   to 1 s, so every request between 250 ms and 1 s was reported as
   "<= 1s".  The default bounds must include 500 ms, and an observation
   between 250 ms and 500 ms must land there, not in the 1 s bucket. *)
let test_latency_bucket_gap () =
  let bounds = Instrument.Histogram.default_latency_bounds_us in
  Alcotest.(check bool) "500ms bound present" true
    (Array.exists (fun b -> b = 500_000) bounds);
  let sorted = Array.for_all (fun i -> i = 0 || bounds.(i - 1) < bounds.(i))
      (Array.init (Array.length bounds) Fun.id)
  in
  Alcotest.(check bool) "bounds strictly increasing" true sorted;
  let h = Instrument.Histogram.create () in
  Instrument.Histogram.observe h 400_000;
  Instrument.Histogram.observe h 600_000;
  let s = Instrument.Histogram.snapshot h in
  let count_at bound =
    let i = ref (-1) in
    Array.iteri (fun j b -> if b = bound then i := j) s.bounds;
    s.counts.(!i)
  in
  Alcotest.(check int) "400ms lands in the 500ms bucket" 1 (count_at 500_000);
  Alcotest.(check int) "600ms lands in the 1s bucket" 1 (count_at 1_000_000)

let test_histogram_edges () =
  let h = Instrument.Histogram.create ~bounds:[| 10; 20 |] () in
  List.iter (Instrument.Histogram.observe h) [ 10; 11; 21; max_int ];
  let s = Instrument.Histogram.snapshot h in
  Alcotest.(check (list int)) "bucketing at the bound is inclusive"
    [ 1; 1; 2 ] (Array.to_list s.counts);
  Alcotest.(check int) "last bound is the catch-all" max_int
    s.bounds.(Array.length s.bounds - 1);
  Alcotest.(check int) "count" 4 s.count;
  Alcotest.check_raises "unsorted bounds rejected"
    (Invalid_argument "Histogram.create: bounds not strictly increasing")
    (fun () -> ignore (Instrument.Histogram.create ~bounds:[| 5; 5 |] ()))

(* Regression for the Metrics.locked bug: an exception inside a critical
   section (here, Family arity validation) must release the mutex, so
   the next well-formed call succeeds instead of deadlocking. *)
let test_family_raise_no_deadlock () =
  let fam =
    Instrument.Family.create ~labels:[ "mode" ]
      ~make:Instrument.Counter.create
  in
  (try ignore (Instrument.Family.labelled fam [ "a"; "b" ])
   with Invalid_argument _ -> ());
  (* Run the retry on another thread with a watchdog: if the mutex
     leaked, this thread blocks forever; we fail instead of hanging the
     suite. *)
  let done_ = Atomic.make false in
  let t =
    Thread.create
      (fun () ->
        Instrument.Counter.incr (Instrument.Family.labelled fam [ "eager" ]);
        Atomic.set done_ true)
      ()
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (Atomic.get done_)) && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  Alcotest.(check bool) "family usable after raising call" true
    (Atomic.get done_);
  Thread.join t;
  Alcotest.(check int) "counter recorded" 1
    (Instrument.Counter.value (Instrument.Family.labelled fam [ "eager" ]))

let test_family_fold_sorted () =
  let fam =
    Instrument.Family.create ~labels:[ "op" ] ~make:Instrument.Counter.create
  in
  List.iter
    (fun v -> Instrument.Counter.incr (Instrument.Family.labelled fam [ v ]))
    [ "join"; "base"; "select" ];
  let order =
    Instrument.Family.fold fam ~init:[] ~f:(fun bindings _ acc ->
        acc @ [ List.assoc "op" bindings ])
  in
  Alcotest.(check (list string)) "fold sorted by label values"
    [ "base"; "join"; "select" ] order

(* 8 threads × 10_000 operations against one counter, one gauge and one
   histogram, with a 9th thread snapshotting throughout.  Totals must be
   exact and every snapshot internally consistent. *)
let test_hammer () =
  let threads = 8 and per_thread = 10_000 in
  let c = Instrument.Counter.create () in
  let g = Instrument.Gauge.create () in
  let h = Instrument.Histogram.create ~bounds:[| 4; 16; 64 |] () in
  let stop = Atomic.make false in
  let inconsistent = Atomic.make 0 in
  let reader =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          let s = Instrument.Histogram.snapshot h in
          if Array.fold_left ( + ) 0 s.counts <> s.count then
            Atomic.incr inconsistent;
          Thread.yield ()
        done)
      ()
  in
  let workers =
    List.init threads (fun i ->
        Thread.create
          (fun () ->
            for j = 1 to per_thread do
              Instrument.Counter.incr c;
              Instrument.Gauge.add g (if j mod 2 = 0 then 1 else -1);
              Instrument.Histogram.observe h ((i + j) mod 100)
            done)
          ())
  in
  List.iter Thread.join workers;
  Atomic.set stop true;
  Thread.join reader;
  Alcotest.(check int) "no torn snapshots" 0 (Atomic.get inconsistent);
  Alcotest.(check int) "counter exact" (threads * per_thread)
    (Instrument.Counter.value c);
  Alcotest.(check int) "gauge exact" 0 (Instrument.Gauge.value g);
  let s = Instrument.Histogram.snapshot h in
  Alcotest.(check int) "histogram count exact" (threads * per_thread) s.count;
  Alcotest.(check int) "histogram sum exact"
    (List.init threads (fun i ->
         List.init per_thread (fun j -> (i + j + 1) mod 100)
         |> List.fold_left ( + ) 0)
     |> List.fold_left ( + ) 0)
    s.sum

(* ---------- registry ---------- *)

let test_registry_duplicate () =
  let reg = Registry.create () in
  ignore (Registry.counter reg ~name:"dup" ~help:"");
  Alcotest.check_raises "duplicate name rejected"
    (Invalid_argument "Registry: duplicate metric name dup") (fun () ->
      ignore (Registry.gauge reg ~name:"dup" ~help:""))

(* A raising polled callback is skipped — the metric reports no samples
   and the registry stays collectable, collection after collection. *)
let test_registry_raising_callback () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~name:"good" ~help:"" in
  Instrument.Counter.add c 3;
  Registry.gauge_fun reg ~name:"bad" ~help:"" (fun () -> raise Not_found);
  let healthy = ref 0.0 in
  Registry.gauge_fun reg ~name:"healthy" ~help:"" (fun () -> !healthy);
  for i = 1 to 3 do
    healthy := float_of_int i;
    let metrics = Registry.collect reg in
    let find name = List.find (fun (m : Registry.metric) -> m.name = name) metrics in
    Alcotest.(check int) "raising metric has no samples" 0
      (List.length (find "bad").samples);
    (match (find "good").samples with
     | [ ([], Registry.Counter_sample 3) ] -> ()
     | _ -> Alcotest.fail "stored counter sampled wrong");
    match (find "healthy").samples with
    | [ ([], Registry.Gauge_sample v) ] ->
      Alcotest.(check (float 0.0)) "later callbacks still polled"
        (float_of_int i) v
    | _ -> Alcotest.fail "healthy gauge sampled wrong"
  done

let test_registry_order () =
  let reg = Registry.create () in
  ignore (Registry.counter reg ~name:"first" ~help:"");
  ignore (Registry.gauge reg ~name:"second" ~help:"");
  ignore (Registry.histogram reg ~name:"third" ~help:"" ());
  Alcotest.(check (list string)) "collect in registration order"
    [ "first"; "second"; "third" ]
    (List.map (fun (m : Registry.metric) -> m.name) (Registry.collect reg))

(* ---------- traces ---------- *)

let test_trace_spans () =
  let tr = Trace.create () in
  let result =
    Trace.span (Some tr) "outer" (fun () ->
        Trace.span (Some tr) "inner" (fun () -> 21) * 2)
  in
  Alcotest.(check int) "value passed through" 42 result;
  (match Trace.spans tr with
   | [ inner; outer ] ->
     Alcotest.(check string) "child recorded first" "inner" inner.Trace.name;
     Alcotest.(check string) "parent second" "outer" outer.Trace.name;
     Alcotest.(check bool) "parent covers child" true
       (outer.Trace.start_us <= inner.Trace.start_us
        && outer.Trace.duration_us >= inner.Trace.duration_us)
   | spans ->
     Alcotest.failf "expected 2 spans, got %d" (List.length spans));
  Alcotest.(check int) "span None is a passthrough" 7
    (Trace.span None "ignored" (fun () -> 7))

let test_trace_records_on_raise () =
  let tr = Trace.create () in
  (try Trace.span (Some tr) "boom" (fun () -> failwith "x")
   with Failure _ -> ());
  match Trace.spans tr with
  | [ { Trace.name = "boom"; _ } ] -> ()
  | _ -> Alcotest.fail "raising span not recorded"

(* Span ids are 1-based in entry order; parents link children to the
   enclosing span, labels stick to the innermost open one, and an
   out-of-band [record] parents under whatever is open. *)
let test_trace_ids_parents_labels () =
  let tr = Trace.create () in
  Trace.span (Some tr) "outer" (fun () ->
      Trace.label (Some tr) "who" "outer";
      Trace.span (Some tr) "inner" (fun () ->
          Trace.label (Some tr) "rows" "42";
          Trace.label (Some tr) "mode" "eager");
      Trace.record tr ~name:"timed-elsewhere" ~start_us:1 ~duration_us:2);
  match Trace.spans tr with
  | [ inner; recorded; outer ] ->
    Alcotest.(check string) "inner first" "inner" inner.Trace.name;
    Alcotest.(check string) "recorded second" "timed-elsewhere"
      recorded.Trace.name;
    Alcotest.(check string) "outer last" "outer" outer.Trace.name;
    Alcotest.(check int) "outer opened first" 1 outer.Trace.id;
    Alcotest.(check int) "inner opened second" 2 inner.Trace.id;
    Alcotest.(check int) "record gets the next id" 3 recorded.Trace.id;
    Alcotest.(check (option int)) "inner nests under outer" (Some 1)
      inner.Trace.parent;
    Alcotest.(check (option int)) "record nests under outer" (Some 1)
      recorded.Trace.parent;
    Alcotest.(check (option int)) "outer is top-level" None outer.Trace.parent;
    Alcotest.(check (list (pair string string))) "labels in call order"
      [ ("rows", "42"); ("mode", "eager") ]
      inner.Trace.labels;
    Alcotest.(check (list (pair string string))) "outer kept its own label"
      [ ("who", "outer") ]
      outer.Trace.labels
  | spans -> Alcotest.failf "expected 3 spans, got %d" (List.length spans)

(* A trace created from a remote context inherits the id and parents its
   top-level spans under the caller's span — the propagation invariant
   the wire relies on. *)
let test_trace_inherited_context () =
  let tr = Trace.create ~trace_id:"abc-1" ~parent_span:7 () in
  Alcotest.(check string) "id inherited" "abc-1" (Trace.trace_id tr);
  Alcotest.(check (option int)) "root parent" (Some 7) (Trace.parent_span tr);
  Alcotest.(check (option int)) "current parent with nothing open" (Some 7)
    (Trace.current_parent tr);
  Trace.span (Some tr) "top" (fun () ->
      Alcotest.(check (option int)) "current parent inside a span" (Some 1)
        (Trace.current_parent tr));
  match Trace.spans tr with
  | [ top ] ->
    Alcotest.(check (option int)) "top-level span under remote parent"
      (Some 7) top.Trace.parent
  | _ -> Alcotest.fail "expected one span"

let mk_span ?parent ~id ~dur name =
  { Trace.id; parent; name; start_us = 0; duration_us = dur; labels = [] }

(* self time = duration minus direct children only (grandchildren are
   already inside their parent), clamped at zero for clock jitter. *)
let test_self_us () =
  let spans =
    [ mk_span ~id:1 ~dur:100 "root";
      mk_span ~parent:1 ~id:2 ~dur:30 "a";
      mk_span ~parent:1 ~id:3 ~dur:20 "b";
      mk_span ~parent:2 ~id:4 ~dur:25 "a-child" ]
  in
  let self id =
    Trace.self_us spans (List.find (fun s -> s.Trace.id = id) spans)
  in
  Alcotest.(check int) "root excludes direct children only" 50 (self 1);
  Alcotest.(check int) "a excludes its child" 5 (self 2);
  Alcotest.(check int) "leaf keeps its duration" 20 (self 3);
  let jitter =
    [ mk_span ~id:1 ~dur:10 "p"; mk_span ~parent:1 ~id:2 ~dur:15 "c" ]
  in
  Alcotest.(check int) "clamped at zero" 0
    (Trace.self_us jitter (List.hd jitter))

(* ---------- trace store ---------- *)

let store_entry ?(node = "n") ?(trace_id = "t") name =
  { Trace_store.node; trace_id; name; started_at = 0.0; total_us = 1;
    spans = [] }

let test_trace_store_ring () =
  let st = Trace_store.create ~capacity:3 () in
  List.iter
    (fun n -> Trace_store.record st (store_entry n))
    [ "a"; "b"; "c"; "d" ];
  Alcotest.(check (list string)) "newest first, oldest evicted"
    [ "d"; "c"; "b" ]
    (List.map (fun (e : Trace_store.entry) -> e.name) (Trace_store.recent st 10));
  Alcotest.(check int) "recent clamps n" 2 (List.length (Trace_store.recent st 2));
  Trace_store.record st (store_entry ~trace_id:"x" "e");
  Alcotest.(check (list string)) "by_trace_id filters" [ "e" ]
    (List.map
       (fun (e : Trace_store.entry) -> e.name)
       (Trace_store.by_trace_id st "x"))

let test_trace_store_finish () =
  let st = Trace_store.create () in
  let tr = Trace.create ~trace_id:"shared" () in
  Trace.span (Some tr) "work" (fun () -> ());
  Trace_store.finish st ~node:"primary" ~name:"SELECT 1" tr;
  match Trace_store.recent st 1 with
  | [ e ] ->
    Alcotest.(check string) "node" "primary" e.Trace_store.node;
    Alcotest.(check string) "trace id" "shared" e.Trace_store.trace_id;
    Alcotest.(check string) "name" "SELECT 1" e.Trace_store.name;
    Alcotest.(check int) "one span" 1 (List.length e.Trace_store.spans)
  | _ -> Alcotest.fail "expected one entry"

(* ---------- chrome trace export ---------- *)

(* The escaper must invert for arbitrary bytes — quotes, backslashes,
   newlines, control bytes and non-ASCII all included (the generator
   draws from the full char range). *)
let escape_roundtrip =
  Generators.qtest "json escape round-trip" ~count:500
    (QCheck2.Gen.string_size ~gen:QCheck2.Gen.char (QCheck2.Gen.int_range 0 64))
    (fun s ->
      Trace_export.unescape_string (Trace_export.escape_string s) = s)

let test_escape_cases () =
  List.iter
    (fun (raw, escaped) ->
      Alcotest.(check string) ("escape " ^ escaped) escaped
        (Trace_export.escape_string raw);
      Alcotest.(check string) ("unescape " ^ escaped) raw
        (Trace_export.unescape_string escaped))
    [ ("he said \"hi\"", "he said \\\"hi\\\"");
      ("a\\b", "a\\\\b");
      ("line1\nline2\r\tend", "line1\\nline2\\r\\tend");
      ("\x01\x1f", "\\u0001\\u001f");
      (* non-ASCII UTF-8 passes through unescaped *)
      ("caf\xc3\xa9", "caf\xc3\xa9") ];
  (* the optional \/ and \uXXXX byte escapes are accepted on the way in *)
  Alcotest.(check string) "solidus escape accepted" "a/b"
    (Trace_export.unescape_string "a\\/b");
  Alcotest.(check string) "u-escape accepted" "A"
    (Trace_export.unescape_string "\\u0041");
  List.iter
    (fun bad ->
      match Trace_export.unescape_string bad with
      | _ -> Alcotest.failf "malformed %S accepted" bad
      | exception Trace_export.Bad_escape _ -> ())
    [ "tail\\"; "\\q"; "\\u12"; "\\uzzzz" ]

let test_export_shape () =
  let span ~id ?parent ~start_us ~dur name =
    { Trace.id; parent; name; start_us; duration_us = dur;
      labels = [ ("rows", "3") ] }
  in
  let entries =
    [ { Trace_store.node = "primary"; trace_id = "tid-1"; name = "SELECT 1";
        started_at = 100.0; total_us = 50;
        spans = [ span ~id:1 ~start_us:0 ~dur:50 "eval" ] };
      { Trace_store.node = "replica-0"; trace_id = "tid-1"; name = "SELECT 1";
        started_at = 100.01; total_us = 20;
        spans = [ span ~id:1 ~start_us:0 ~dur:20 "eval" ] } ]
  in
  let json = Trace_export.to_json entries in
  let contains sub =
    let n = String.length sub and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun sub -> Alcotest.(check bool) ("contains: " ^ sub) true (contains sub))
    [ "{\"traceEvents\":[";
      (* one process lane per node *)
      "\"process_name\"";
      "\"primary\"";
      "\"replica-0\"";
      (* both halves carry the shared trace id *)
      "\"trace_id\":\"tid-1\"";
      (* absolute alignment: 100 s origin -> 100_000_000 us *)
      "\"ts\":100000000";
      "\"ts\":100010000";
      "\"ph\":\"X\"";
      "\"rows\":\"3\"" ]

(* ---------- health rules ---------- *)

let rule ?(op = Health.Above) ?(degraded = 10.) ?(critical = 100.) name source =
  { Health.name; source; op; degraded; critical; help = "h:" ^ name }

let test_health_levels () =
  let reg = Registry.create () in
  let g = Registry.gauge reg ~name:"lag" ~help:"" in
  let rules = [ rule "lag" (Health.Metric "lag") ] in
  let level () = (Health.evaluate rules (Registry.collect reg)).Health.level in
  Instrument.Gauge.set g 5;
  Alcotest.(check bool) "below both: ok" true (level () = Health.Ok);
  Instrument.Gauge.set g 10;
  Alcotest.(check bool) "at degraded threshold fires" true
    (level () = Health.Degraded);
  Instrument.Gauge.set g 100;
  Alcotest.(check bool) "critical wins" true (level () = Health.Critical);
  match (Health.evaluate rules (Registry.collect reg)).Health.firing with
  | [ f ] ->
    Alcotest.(check string) "firing carries the rule" "lag" f.Health.rule_name;
    Alcotest.(check (float 1e-9)) "and the reading" 100. f.Health.value;
    Alcotest.(check string) "and the help" "h:lag" f.Health.help
  | _ -> Alcotest.fail "expected exactly one firing rule"

let test_health_worst_label_and_missing () =
  let reg = Registry.create () in
  let fam =
    Registry.gauge_family reg ~name:"per_replica_lag" ~help:""
      ~labels:[ "replica" ]
  in
  Instrument.Gauge.set (Instrument.Family.labelled fam [ "a" ]) 1;
  Instrument.Gauge.set (Instrument.Family.labelled fam [ "b" ]) 50;
  let rules =
    [ rule "lag" (Health.Metric "per_replica_lag");
      (* no such metric: skipped, not fired *)
      rule "ghost" (Health.Metric "nope") ]
  in
  let r = Health.evaluate rules (Registry.collect reg) in
  Alcotest.(check bool) "laggiest replica decides" true
    (r.Health.level = Health.Degraded);
  Alcotest.(check int) "absent metric skipped" 1 (List.length r.Health.firing)

let test_health_ratio_below () =
  let reg = Registry.create () in
  let hits = Registry.counter reg ~name:"hits" ~help:"" in
  let reqs = Registry.counter reg ~name:"reqs" ~help:"" in
  let rules =
    [ rule ~op:Health.Below ~degraded:0.5 ~critical:0.1 "hit_ratio"
        (Health.Ratio { num = "hits"; den = "reqs"; min_den = 8. }) ]
  in
  let level () = (Health.evaluate rules (Registry.collect reg)).Health.level in
  (* zero denominator: unevaluable, never fires *)
  Alcotest.(check bool) "cold cache is ok" true (level () = Health.Ok);
  (* 0/4 would read critical, but 4 samples is noise, not evidence *)
  Instrument.Counter.add reqs 4;
  Alcotest.(check bool) "below min_den: still skipped" true
    (level () = Health.Ok);
  Instrument.Counter.add reqs 6;
  Instrument.Counter.add hits 2;
  Alcotest.(check bool) "20% hit ratio degrades" true
    (level () = Health.Degraded);
  Instrument.Counter.add hits 7;
  Alcotest.(check bool) "90% hit ratio is ok" true (level () = Health.Ok)

let test_health_hist_frac () =
  let reg = Registry.create () in
  let h =
    Registry.histogram reg ~scale:1e-6 ~bounds:[| 1_000; 50_000; 1_000_000 |]
      ~name:"latency" ~help:"" ()
  in
  let rules =
    [ rule ~degraded:0.25 ~critical:0.75 "slow"
        (Health.Hist_frac_above { metric = "latency"; bound = 50_000. }) ]
  in
  let level () = (Health.evaluate rules (Registry.collect reg)).Health.level in
  Alcotest.(check bool) "no observations: skipped" true (level () = Health.Ok);
  (* 3 fast, 1 slow = 25% above the 50 ms bound *)
  List.iter (Instrument.Histogram.observe h) [ 10; 10; 10; 900_000 ];
  Alcotest.(check bool) "25% slow degrades" true (level () = Health.Degraded);
  List.iter (Instrument.Histogram.observe h) (List.init 8 (fun _ -> 900_000));
  Alcotest.(check bool) "75% slow is critical" true (level () = Health.Critical)

let test_health_strings () =
  List.iter
    (fun l ->
      Alcotest.(check bool) "to/of_string invert" true
        (Health.level_of_string (Health.level_to_string l) = Some l))
    [ Health.Ok; Health.Degraded; Health.Critical ];
  Alcotest.(check bool) "unknown level rejected" true
    (Health.level_of_string "fine" = None);
  Alcotest.(check bool) "worst is critical" true
    (Health.worst Health.Degraded Health.Critical = Health.Critical)

(* ---------- slow log ---------- *)

let test_slow_log_ranking () =
  let log = Slow_log.create ~capacity:8 () in
  List.iteri
    (fun i us ->
      Slow_log.record log
        ~statement:(Printf.sprintf "q%d" i)
        ~trace_id:(Printf.sprintf "t%d" i) ~total_us:us ~spans:[])
    [ 30; 100; 10; 100; 50 ];
  let top = Slow_log.slowest log 3 in
  Alcotest.(check (list string)) "slowest first, ties newest first"
    [ "q3"; "q1"; "q4" ]
    (List.map (fun (e : Slow_log.entry) -> e.statement) top);
  Alcotest.(check int) "asking beyond capacity is clamped" 5
    (List.length (Slow_log.slowest log 99))

let test_slow_log_threshold_and_eviction () =
  let log = Slow_log.create ~capacity:2 ~threshold_us:20 () in
  Slow_log.record log ~statement:"fast" ~trace_id:"tf" ~total_us:19 ~spans:[];
  Alcotest.(check int) "below threshold skipped" 0
    (List.length (Slow_log.slowest log 10));
  List.iter
    (fun (s, us) ->
      Slow_log.record log ~statement:s ~trace_id:("t-" ^ s) ~total_us:us
        ~spans:[])
    [ ("a", 100); ("b", 30); ("c", 40) ];
  Alcotest.(check (list string)) "ring evicts oldest, not slowest"
    [ "c"; "b" ]
    (List.map (fun (e : Slow_log.entry) -> e.statement)
       (Slow_log.slowest log 10))

(* ---------- prometheus rendering ---------- *)

let test_prometheus_render () =
  let reg = Registry.create () in
  let c =
    Registry.counter reg ~name:"expirel_widgets_total" ~help:"Widgets\nmade"
  in
  Instrument.Counter.add c 3;
  let h =
    Registry.histogram reg ~scale:1e-6 ~bounds:[| 1_000; 500_000 |]
      ~name:"expirel_lat_seconds" ~help:"lat" ()
  in
  Instrument.Histogram.observe h 400_000;
  Instrument.Histogram.observe h 999;
  let fam =
    Registry.counter_family reg ~name:"expirel_modes_total" ~help:"modes"
      ~labels:[ "mode" ]
  in
  Instrument.Counter.incr
    (Instrument.Family.labelled fam [ "ea\"ger\\x\ny" ]);
  let text = Prometheus.render (Registry.collect reg) in
  let has line = List.mem line (String.split_on_char '\n' text) in
  List.iter
    (fun line -> Alcotest.(check bool) ("has: " ^ line) true (has line))
    [ "# HELP expirel_widgets_total Widgets\\nmade";
      "# TYPE expirel_widgets_total counter";
      "expirel_widgets_total 3";
      "# TYPE expirel_lat_seconds histogram";
      "expirel_lat_seconds_bucket{le=\"0.001\"} 1";
      (* buckets are cumulative *)
      "expirel_lat_seconds_bucket{le=\"0.5\"} 2";
      "expirel_lat_seconds_bucket{le=\"+Inf\"} 2";
      "expirel_lat_seconds_count 2";
      (* label values escape backslash, quote and newline *)
      "expirel_modes_total{mode=\"ea\\\"ger\\\\x\\ny\"} 1" ];
  (* _sum is scaled to seconds *)
  Alcotest.(check bool) "sum scaled" true
    (List.exists
       (fun l ->
         String.length l > 24
         && String.sub l 0 24 = "expirel_lat_seconds_sum "
         && float_of_string (String.sub l 24 (String.length l - 24))
            -. 0.400999 < 1e-6)
       (String.split_on_char '\n' text))

(* ---------- exposition hygiene ----------

   A reusable lint over Prometheus text pages, shared with the server
   and cluster suites: every sample's family must be declared with
   [# HELP] and [# TYPE] before it, no family may be declared twice,
   and histogram [le] buckets must be strictly ascending and end at
   [+Inf]. *)

let lint_exposition text =
  let exception Bad of string in
  let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  try
    let help = Hashtbl.create 16 in
    let ty = Hashtbl.create 16 in
    (* per bucket series (family + labels sans le): le values seen *)
    let buckets = Hashtbl.create 16 in
    let strip_suffix name =
      List.find_map
        (fun suffix ->
          let n = String.length name and k = String.length suffix in
          if n > k && String.sub name (n - k) k = suffix then
            Some (String.sub name 0 (n - k))
          else None)
        [ "_bucket"; "_sum"; "_count" ]
    in
    let family_of name =
      match strip_suffix name with
      | Some base when Hashtbl.find_opt ty base = Some "histogram" -> base
      | _ -> name
    in
    let le_of labels =
      (* labels is the "{...}" section; pull out le="...", return the
         bound and the labels with the le pair removed (series key) *)
      let marker = "le=\"" in
      let n = String.length labels and k = String.length marker in
      let rec find i =
        if i + k > n then None
        else if
          String.sub labels i k = marker
          && i > 0
          && (labels.[i - 1] = '{' || labels.[i - 1] = ',')
        then Some i
        else find (i + 1)
      in
      match find 0 with
      | None -> None
      | Some i ->
        (match String.index_from_opt labels (i + k) '"' with
         | None -> bad "unterminated le label in %s" labels
         | Some j ->
           let v = String.sub labels (i + k) (j - i - k) in
           let rest =
             String.sub labels 0 i
             ^ String.sub labels (j + 1) (n - j - 1)
           in
           let bound =
             if v = "+Inf" then infinity
             else
               match float_of_string_opt v with
               | Some f -> f
               | None -> bad "unparsable le bound %S" v
           in
           Some (bound, rest))
    in
    List.iter
      (fun line ->
        if line = "" then ()
        else if String.length line > 7 && String.sub line 0 7 = "# HELP " then begin
          let name =
            match String.index_from_opt line 7 ' ' with
            | Some i -> String.sub line 7 (i - 7)
            | None -> String.sub line 7 (String.length line - 7)
          in
          if Hashtbl.mem help name then bad "duplicate # HELP for %s" name;
          Hashtbl.replace help name ()
        end
        else if String.length line > 7 && String.sub line 0 7 = "# TYPE " then begin
          match String.split_on_char ' ' line with
          | [ _; _; name; kind ] ->
            if Hashtbl.mem ty name then bad "duplicate # TYPE for %s" name;
            Hashtbl.replace ty name kind
          | _ -> bad "malformed TYPE line %S" line
        end
        else if line.[0] = '#' then ()
        else begin
          (* a sample: name{labels} value | name value *)
          let name, labels =
            match String.index_opt line '{' with
            | Some i ->
              (match String.rindex_opt line '}' with
               | Some j when j > i ->
                 String.sub line 0 i, String.sub line i (j - i + 1)
               | _ -> bad "unbalanced labels in %S" line)
            | None ->
              (match String.index_opt line ' ' with
               | Some i -> String.sub line 0 i, ""
               | None -> bad "malformed sample line %S" line)
          in
          let family = family_of name in
          if not (Hashtbl.mem ty family) then
            bad "sample %s before its # TYPE" name;
          if not (Hashtbl.mem help family) then
            bad "sample %s before its # HELP" name;
          match le_of labels with
          | None -> ()
          | Some (bound, series) ->
            let key = family ^ series in
            let seen =
              Option.value ~default:[] (Hashtbl.find_opt buckets key)
            in
            (match seen with
             | prev :: _ when bound <= prev ->
               bad "unsorted le buckets for %s" family
             | _ -> ());
            Hashtbl.replace buckets key (bound :: seen)
        end)
      (String.split_on_char '\n' text);
    Hashtbl.iter
      (fun key -> function
        | last :: _ when last <> infinity ->
          bad "bucket series %s does not end at +Inf" key
        | _ -> ())
      buckets;
    Ok ()
  with Bad m -> Error m

let check_exposition ~what text =
  match lint_exposition text with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: %s" what m

let test_exposition_hygiene () =
  (* a real page passes... *)
  let reg = Registry.create () in
  let h =
    Registry.histogram reg ~bounds:[| 10; 100 |] ~name:"expirel_h"
      ~help:"hist" ()
  in
  Instrument.Histogram.observe h 42;
  Instrument.Counter.incr (Registry.counter reg ~name:"expirel_c" ~help:"c");
  check_exposition ~what:"registry page" (Prometheus.render (Registry.collect reg));
  (* ...and each hygiene violation is caught *)
  let rejects what page =
    match lint_exposition page with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "lint accepted %s" what
  in
  rejects "a duplicate family"
    "# HELP a x\n# TYPE a counter\na 1\n# HELP a x\n# TYPE a counter\n";
  rejects "a sample without HELP" "# TYPE a counter\na 1\n";
  rejects "a sample without TYPE" "# HELP a x\na 1\n";
  rejects "unsorted le buckets"
    "# HELP a x\n# TYPE a histogram\n\
     a_bucket{le=\"5\"} 1\na_bucket{le=\"1\"} 1\na_bucket{le=\"+Inf\"} 2\n\
     a_sum 3\na_count 2\n";
  rejects "a bucket series without +Inf"
    "# HELP a x\n# TYPE a histogram\n\
     a_bucket{le=\"1\"} 1\na_bucket{le=\"5\"} 2\na_sum 3\na_count 2\n"

(* The slow log stamps each entry with its request's trace id, so slow
   entries join against the trace store's export. *)
let test_slow_log_joins_traces () =
  let log = Slow_log.create () in
  let store = Trace_store.create ~capacity:8 () in
  let tr = Trace.create () in
  Trace.span (Some tr) "eval" (fun () -> ());
  Trace_store.finish store ~node:"n1" ~name:"SELECT 1" tr;
  Slow_log.record log ~statement:"SELECT 1" ~trace_id:(Trace.trace_id tr)
    ~total_us:123 ~spans:(Trace.spans tr);
  match Slow_log.slowest log 1 with
  | [ e ] ->
    Alcotest.(check string) "trace id stamped" (Trace.trace_id tr) e.trace_id;
    let joined =
      List.filter
        (fun (entry : Trace_store.entry) -> entry.trace_id = e.trace_id)
        (Trace_store.recent store 8)
    in
    Alcotest.(check int) "joins one stored trace" 1 (List.length joined)
  | es -> Alcotest.failf "expected one entry, got %d" (List.length es)

let suite =
  [ Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "gauge" `Quick test_gauge;
    Alcotest.test_case "latency bucket gap (500ms)" `Quick
      test_latency_bucket_gap;
    Alcotest.test_case "histogram edges" `Quick test_histogram_edges;
    Alcotest.test_case "family raise releases mutex" `Quick
      test_family_raise_no_deadlock;
    Alcotest.test_case "family fold order" `Quick test_family_fold_sorted;
    Alcotest.test_case "multi-thread hammer" `Quick test_hammer;
    Alcotest.test_case "registry duplicate names" `Quick
      test_registry_duplicate;
    Alcotest.test_case "registry raising callback" `Quick
      test_registry_raising_callback;
    Alcotest.test_case "registry collection order" `Quick test_registry_order;
    Alcotest.test_case "trace spans" `Quick test_trace_spans;
    Alcotest.test_case "trace records on raise" `Quick
      test_trace_records_on_raise;
    Alcotest.test_case "trace ids, parents, labels" `Quick
      test_trace_ids_parents_labels;
    Alcotest.test_case "trace inherits remote context" `Quick
      test_trace_inherited_context;
    Alcotest.test_case "self time" `Quick test_self_us;
    Alcotest.test_case "trace store ring" `Quick test_trace_store_ring;
    Alcotest.test_case "trace store finish" `Quick test_trace_store_finish;
    escape_roundtrip;
    Alcotest.test_case "json escape cases" `Quick test_escape_cases;
    Alcotest.test_case "chrome export shape" `Quick test_export_shape;
    Alcotest.test_case "health levels" `Quick test_health_levels;
    Alcotest.test_case "health worst label + missing metric" `Quick
      test_health_worst_label_and_missing;
    Alcotest.test_case "health ratio (below)" `Quick test_health_ratio_below;
    Alcotest.test_case "health histogram fraction" `Quick
      test_health_hist_frac;
    Alcotest.test_case "health level strings" `Quick test_health_strings;
    Alcotest.test_case "slow log ranking" `Quick test_slow_log_ranking;
    Alcotest.test_case "slow log threshold + eviction" `Quick
      test_slow_log_threshold_and_eviction;
    Alcotest.test_case "prometheus rendering" `Quick test_prometheus_render;
    Alcotest.test_case "exposition hygiene lint" `Quick
      test_exposition_hygiene;
    Alcotest.test_case "slow log joins trace store" `Quick
      test_slow_log_joins_traces ]
