(* The horizon is a *forecast*, not a sample: expiration times are
   explicit and logical time is deterministic, so the bucketed "rows
   expiring within the next d ticks" profile is exact.  The properties
   pinned here: a bucket's count equals the rows a subsequent ADVANCE
   actually drops; per-shard partials merge bucket-wise into precisely
   the single-node profile; and the subscription fan-out forecast
   equals the events an advance then delivers. *)

open Expirel_core
open Expirel_storage
open Expirel_sqlx
module Horizon = Expirel_obs.Horizon
module Gen = QCheck2.Gen

let fin = Time.of_int

(* A workload is a list of optional TTLs: [Some k] inserts a row
   expiring at tick [k], [None] a never-expiring one. *)
let ttls = Gen.list_size (Gen.int_range 0 20) (Gen.option (Gen.int_range 1 24))

let must_ok interp sql =
  List.iter
    (function
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: %s" sql e)
    (Interp.exec_script interp sql)

let insert_sql ~table i = function
  | None -> Printf.sprintf "INSERT INTO %s VALUES (%d, %d);" table i (i mod 3)
  | Some k ->
    Printf.sprintf "INSERT INTO %s VALUES (%d, %d) EXPIRES %d;" table i
      (i mod 3) k

let total_expiring_within report d =
  List.fold_left
    (fun acc tb -> acc + Horizon.expiring_within tb d)
    0 report.Horizon.tables

let total_live report =
  List.fold_left (fun acc tb -> acc + Horizon.live tb) 0 report.Horizon.tables

(* ---------- forecast exactness, single node ----------

   For any bucket bound d, "rows expiring within d ticks" must equal
   the rows ADVANCE TO now+d then drops — the forecast verifies against
   the future it predicted.  (d ranges over the actual bucket bounds:
   the profile is bucketed, so only cuts at bounds are exact.) *)

let forecast_matches_advance =
  Generators.qtest "bucket counts equal rows dropped by ADVANCE" ~count:150
    (Gen.pair ttls (Gen.oneofl [ 1; 2; 4; 8; 16; 32 ]))
    (fun (rows, d) ->
      let interp = Interp.create () in
      must_ok interp "CREATE TABLE t (uid, v);";
      List.iteri (fun i ttl -> must_ok interp (insert_sql ~table:"t" i ttl)) rows;
      let report = Interp.horizon interp in
      let db = Interp.database interp in
      let predicted = total_expiring_within report d in
      let live_before = Database.live_rows db in
      let expired_before = Database.expired_total db in
      must_ok interp (Printf.sprintf "ADVANCE TO %d;" d);
      let dropped = Database.expired_total db - expired_before in
      total_live report = live_before
      && dropped = predicted
      && Database.live_rows db = live_before - predicted
      (* the fresh profile at the new clock has forgotten the drops *)
      && total_live (Interp.horizon interp) = live_before - predicted)

(* ---------- merge law: shard partials vs the union ----------

   Hash partitions are disjoint, so bucket-wise addition of per-shard
   profiles is exact: merged 3-shard partials equal the profile of one
   node holding every row. *)

let merge_matches_union =
  Generators.qtest "3-shard partials merge to the single-node profile"
    ~count:150 ttls
    (fun rows ->
      let mk () =
        let interp = Interp.create () in
        must_ok interp "CREATE TABLE t (uid, v); CREATE TABLE u (uid, v);";
        interp
      in
      let union = mk () in
      let shards = Array.init 3 (fun _ -> mk ()) in
      List.iteri
        (fun i ttl ->
          let table = if i mod 2 = 0 then "t" else "u" in
          let sql = insert_sql ~table i ttl in
          must_ok union sql;
          must_ok shards.(i mod 3) sql)
        rows;
      let merged =
        Horizon.merge_reports
          (Array.to_list (Array.map Interp.horizon shards))
      in
      let single = Interp.horizon union in
      merged.Horizon.tables = single.Horizon.tables
      && merged.Horizon.now = single.Horizon.now
      && merged.Horizon.window = single.Horizon.window)

let test_merge_rejects_mismatched_buckets () =
  let tb name bounds =
    { Horizon.name; bounds; counts = Array.map (fun _ -> 1) bounds }
  in
  (match Horizon.merge [ [ tb "t" [| 1; 2 |] ]; [ tb "t" [| 1; 4 |] ] ] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "mismatched bucket bounds merged");
  match Horizon.merge_reports [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty merge accepted"

(* ---------- fan-out forecast: predicted = delivered ---------- *)

let forecast_equals_delivered =
  Generators.qtest "forecast_events equals events then delivered" ~count:150
    (Gen.pair ttls (Gen.int_range 1 30))
    (fun (rows, until) ->
      let db = Database.create () in
      let t = Database.create_table db ~name:"t" ~columns:[ "uid"; "v" ] in
      List.iteri
        (fun i ttl ->
          let texp = match ttl with None -> Time.Inf | Some k -> fin k in
          Table.insert t
            (Tuple.of_list [ Value.int i; Value.int (i mod 3) ])
            ~texp)
        rows;
      let subs = Subscription.create db in
      let fired = ref 0 in
      Subscription.subscribe subs ~name:"all"
        Algebra.(project [ 1 ] (base "t"))
        (fun _ -> incr fired);
      Subscription.subscribe subs ~name:"counts"
        Algebra.(aggregate [ 2 ] Aggregate.Count (base "t"))
        (fun _ -> incr fired);
      let predicted = Subscription.forecast_events subs ~until:(fin until) in
      Subscription.advance subs (fin until);
      predicted = !fired)

(* ---------- churn tracker arithmetic ---------- *)

let test_churn_rates () =
  let rates c = Horizon.Churn.rates c in
  let check what expected got =
    Alcotest.(check (pair (float 1e-9) (float 1e-9))) what expected got
  in
  let c = Horizon.Churn.create ~window:8 () in
  check "no samples" (0., 0.) (rates c);
  Horizon.Churn.observe c ~now:0 ~arrivals:0 ~expirations:0;
  check "one sample is not a rate" (0., 0.) (rates c);
  Horizon.Churn.observe c ~now:4 ~arrivals:8 ~expirations:2;
  check "8 arrivals, 2 expirations over 4 ticks" (2.0, 0.5) (rates c);
  (* a same-tick observation replaces, never divides by zero *)
  Horizon.Churn.observe c ~now:4 ~arrivals:12 ~expirations:2;
  check "same-tick resample replaces" (3.0, 0.5) (rates c);
  (* far ahead: everything has left the window, but one older sample is
     kept as baseline so the rate still spans the gap *)
  Horizon.Churn.observe c ~now:20 ~arrivals:20 ~expirations:10;
  check "out-of-window baseline retained" (0.5, 0.5) (rates c)

(* The interpreter's tracker samples at clock movements: two ADVANCEs
   with arrivals in between yield the exact arithmetic rates. *)
let test_interp_churn () =
  let interp = Interp.create () in
  must_ok interp "CREATE TABLE t (uid, v); ADVANCE TO 1;";
  List.iteri
    (fun i ttl -> must_ok interp (insert_sql ~table:"t" i ttl))
    [ Some 3; Some 3; Some 3; Some 3 ];
  must_ok interp "ADVANCE TO 3;";
  let r = Interp.horizon interp in
  Alcotest.(check (float 1e-9)) "arrival rate" 2.0 r.Horizon.arrival_rate;
  Alcotest.(check (float 1e-9)) "expiration rate" 2.0 r.Horizon.expiration_rate;
  Alcotest.(check int) "interpreter forecasts no fan-out" 0
    r.Horizon.fanout_events

(* ---------- SHOW HORIZON, and the per-table restriction ---------- *)

let test_show_horizon () =
  let interp = Interp.create () in
  must_ok interp
    "CREATE TABLE pol (uid, deg); CREATE TABLE el (uid, deg);\n\
     INSERT INTO pol VALUES (1, 25) EXPIRES 10;\n\
     INSERT INTO pol VALUES (2, 30) EXPIRES 900;\n\
     INSERT INTO el VALUES (3, 25);";
  (match Interp.exec_script interp "SHOW HORIZON;" with
   | [ Ok (Interp.Msg m) ] ->
     List.iter
       (fun sub ->
         Alcotest.(check bool) ("mentions " ^ sub) true
           (let n = String.length sub and len = String.length m in
            let rec go i =
              i + n <= len && (String.sub m i n = sub || go (i + 1))
            in
            go 0))
       [ "horizon now=0"; "table el: live=1 soon=0"; "table pol: live=2";
         "le=+Inf rows=1" ]
   | _ -> Alcotest.fail "SHOW HORIZON did not answer one message");
  (match Interp.exec_script interp "SHOW HORIZON FOR pol;" with
   | [ Ok (Interp.Msg m) ] ->
     Alcotest.(check bool) "restricted to pol" false
       (let sub = "table el" and len = String.length m in
        let n = String.length sub in
        let rec go i = i + n <= len && (String.sub m i n = sub || go (i + 1)) in
        go 0)
   | _ -> Alcotest.fail "SHOW HORIZON FOR did not answer one message");
  match Interp.exec_script interp "SHOW HORIZON FOR ghost;" with
  | [ Error _ ] -> ()
  | _ -> Alcotest.fail "unknown table accepted"

(* The report renders into well-formed Prometheus families (shared
   hygiene lint), with one histogram series per table. *)
let test_horizon_metrics_page () =
  let interp = Interp.create () in
  must_ok interp
    "CREATE TABLE t (uid, v); INSERT INTO t VALUES (1, 1) EXPIRES 5;";
  let page =
    Expirel_obs.Prometheus.render (Horizon.metrics (Interp.horizon interp))
  in
  Test_obs.check_exposition ~what:"horizon page" page;
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("exposes " ^ sub) true
        (let n = String.length sub and len = String.length page in
         let rec go i =
           i + n <= len && (String.sub page i n = sub || go (i + 1))
         in
         go 0))
    [ "# TYPE expirel_horizon_rows histogram";
      "expirel_horizon_rows_bucket{table=\"t\",le=\"8\"} 1";
      "expirel_horizon_fanout_events 0";
      "expirel_churn_rate{kind=\"arrival\"}" ]

let suite =
  [ forecast_matches_advance;
    merge_matches_union;
    forecast_equals_delivered;
    Alcotest.test_case "merge rejects mismatched buckets" `Quick
      test_merge_rejects_mismatched_buckets;
    Alcotest.test_case "churn tracker arithmetic" `Quick test_churn_rates;
    Alcotest.test_case "interpreter churn rates" `Quick test_interp_churn;
    Alcotest.test_case "SHOW HORIZON rendering and FOR filter" `Quick
      test_show_horizon;
    Alcotest.test_case "horizon metrics page hygiene" `Quick
      test_horizon_metrics_page ]
