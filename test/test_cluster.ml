(* The sharded cluster, end to end over real sockets.

   The acceptance contract of the coordinator: (a) a scatter-gathered
   result is row- and texp(e)-identical to the same statements run on
   one node holding the union of the partitions; (b) a shard whose
   whole partition has expired is pruned from fan-outs — observable in
   the pruned counter and the per-shard request counters — while
   results stay identical to a forced broadcast; (c) one client trace
   id spans the coordinator and every contacted shard in the merged
   trace view.  Plus: routed inserts land on [Wire.shard_owner]'s
   pick, rebalancing preserves contents exactly, and the default
   health rules degrade when a shard stops heartbeating or restarts
   with a lost map. *)

open Expirel_core
open Expirel_server
module Coordinator = Expirel_cluster.Coordinator
module Obs = Expirel_obs

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

let no_err msg = function
  | Wire.Err { message; _ } -> Alcotest.fail (msg ^ ": " ^ message)
  | (r : Wire.response) -> r

(* ---------- harness: n shard servers + a coordinator ---------- *)

let shard_config =
  { Server.default_config with Server.host = "127.0.0.1"; port = 0 }

let with_shards n f =
  let servers = List.init n (fun _ -> Server.create ~config:shard_config ()) in
  List.iter Server.start servers;
  Fun.protect
    ~finally:(fun () -> List.iter Server.stop servers)
    (fun () ->
      f servers
        (List.map
           (fun s -> { Coordinator.host = "127.0.0.1"; port = Server.port s })
           servers))

(* Heartbeats run on demand ([heartbeat_now]) so every refresh in these
   tests is deterministic. *)
let with_cluster n f =
  with_shards n (fun servers endpoints ->
      let coord = Coordinator.create ~heartbeat_interval:0. ~shards:endpoints () in
      Fun.protect
        ~finally:(fun () -> Coordinator.close coord)
        (fun () -> f coord servers endpoints))

let exec coord sql = no_err sql (Coordinator.exec coord sql)

let rows_of sql = function
  | Wire.Rows { rows; texp_e; _ } -> rows, texp_e
  | r ->
    Alcotest.fail
      (Printf.sprintf "%s: expected rows, got %s" sql (Wire.render_response r))

let sorted rows = List.sort compare rows

(* The workload both sides run: keys hash onto distinct shards, some
   rows expire early, projections create cross-shard duplicates, and
   UNION/EXCEPT exercise the set-operation paths. *)
let statements =
  [ "CREATE TABLE pol (uid, deg)";
    "CREATE TABLE aux (uid, tag)";
    "INSERT INTO pol VALUES (1, 25) EXPIRES 10";
    "INSERT INTO pol VALUES (2, 30) EXPIRES 20";
    "INSERT INTO pol VALUES (3, 25) EXPIRES 30";
    "INSERT INTO pol VALUES (4, 40) EXPIRES 8";
    "INSERT INTO pol VALUES (5, 25) EXPIRES 40";
    "INSERT INTO pol VALUES (6, 30) EXPIRES 12";
    "INSERT INTO aux VALUES (1, 7) EXPIRES 25";
    "INSERT INTO aux VALUES (9, 7) EXPIRES 15";
    "ADVANCE TO 9" ]

let queries =
  [ "SELECT * FROM pol";
    "SELECT * FROM pol WHERE deg = 25";
    "SELECT deg FROM pol";  (* cross-shard duplicates: union rule *)
    "SELECT uid, deg FROM pol ORDER BY deg DESC, uid ASC";
    "SELECT * FROM pol ORDER BY uid LIMIT 3";
    "SELECT uid FROM pol UNION SELECT uid FROM aux";
    "SELECT * FROM pol EXCEPT SELECT * FROM pol WHERE deg = 30";
    "SELECT * FROM pol AT 15";
    "SELECT * FROM pol AT 35" ]

(* ---------- (a) scatter-gather == one node over the union ---------- *)

let test_matches_single_node () =
  with_cluster 3 (fun coord _servers _eps ->
      let single = Server.create ~config:shard_config () in
      Server.start single;
      Fun.protect
        ~finally:(fun () -> Server.stop single)
        (fun () ->
          let c =
            Client.connect ~host:"127.0.0.1" ~port:(Server.port single) ()
          in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              List.iter
                (fun sql ->
                  ignore (exec coord sql);
                  ignore (no_err sql (ok (Client.exec c sql))))
                statements;
              List.iter
                (fun sql ->
                  let cl_rows, cl_texp = rows_of sql (exec coord sql) in
                  let sn_rows, sn_texp =
                    rows_of sql (no_err sql (ok (Client.exec c sql)))
                  in
                  (* Identical sets with identical per-tuple texps; and
                     where ORDER BY fixes the order, identical listings. *)
                  Alcotest.(check bool)
                    (sql ^ ": same rows") true
                    (sorted cl_rows = sorted sn_rows);
                  let has_order_by =
                    let n = String.length sql in
                    let rec go i =
                      i + 8 <= n && (String.sub sql i 8 = "ORDER BY" || go (i + 1))
                    in
                    go 0
                  in
                  if has_order_by then
                    Alcotest.(check bool)
                      (sql ^ ": same listing order") true (cl_rows = sn_rows);
                  Alcotest.(check bool)
                    (sql ^ ": same texp(e)") true
                    (Time.equal cl_texp sn_texp))
                queries)))

(* ---------- routing: inserts land on the owner ---------- *)

let test_insert_routing () =
  with_cluster 3 (fun coord _servers _eps ->
      ignore (exec coord "CREATE TABLE t (k, v)");
      let n = 50 in
      for k = 1 to n do
        ignore
          (exec coord (Printf.sprintf "INSERT INTO t VALUES (%d, 0) EXPIRES 100" k))
      done;
      Coordinator.heartbeat_now coord;
      let map = Coordinator.shard_map coord in
      let expected shard_id =
        List.length
          (List.filter
             (fun k -> Wire.shard_owner map (Value.int k) = shard_id)
             (List.init n (fun i -> i + 1)))
      in
      List.iter
        (fun (id, summary, _) ->
          match summary with
          | None -> Alcotest.fail "summary unknown after heartbeat"
          | Some { Wire.live_rows; _ } ->
            Alcotest.(check int)
              (Printf.sprintf "shard %d row count" id)
              (expected id) live_rows)
        (Coordinator.summaries coord);
      (* All shards hold something: the routing actually spreads. *)
      List.iter
        (fun (id, summary, _) ->
          match summary with
          | Some { Wire.live_rows; _ } ->
            if live_rows = 0 then
              Alcotest.fail (Printf.sprintf "shard %d got no rows" id)
          | None -> ())
        (Coordinator.summaries coord))

(* ---------- (b) pruning: skip expired shards, same answers ---------- *)

let shard_requests coord id =
  let needle = Printf.sprintf "expirel_cluster_shard_requests_total{shard=\"%d\"}" id in
  let metrics = Coordinator.metrics coord in
  let rec find i =
    match String.index_from_opt metrics i '\n' with
    | None -> Alcotest.fail ("metric not found: " ^ needle)
    | Some j ->
      let line = String.sub metrics i (j - i) in
      if
        String.length line > String.length needle
        && String.sub line 0 (String.length needle) = needle
      then
        int_of_float
          (float_of_string
             (String.trim
                (String.sub line (String.length needle)
                   (String.length line - String.length needle))))
      else find (j + 1)
  in
  find 0

let test_pruning () =
  with_cluster 3 (fun coord _servers _eps ->
      ignore (exec coord "CREATE TABLE t (k, v)");
      (* Give every shard rows, with one shard's whole partition dying
         early: find a key per shard, give one shard only short-lived
         rows. *)
      let map = Coordinator.shard_map coord in
      let key_on shard_id =
        let rec hunt k =
          if Wire.shard_owner map (Value.int k) = shard_id then k
          else hunt (k + 1)
        in
        hunt 1
      in
      let doomed = 2 in
      List.iter
        (fun (id, _, _) ->
          let k = key_on id in
          let texp = if id = doomed then 10 else 100 in
          ignore
            (exec coord
               (Printf.sprintf "INSERT INTO t VALUES (%d, %d) EXPIRES %d" k id
                  texp)))
        (Coordinator.summaries coord);
      let q = "SELECT * FROM t" in
      let before_rows, before_texp = rows_of q (exec coord q) in
      Alcotest.(check int) "all three rows live" 3 (List.length before_rows);
      ignore (exec coord "ADVANCE TO 50");
      (* The doomed shard's partition is now fully expired; its ADVANCE
         ack already refreshed the summary, so the very next fan-out
         skips it. *)
      let req_before = shard_requests coord doomed in
      let pruned_before = (Coordinator.traffic coord).Coordinator.pruned in
      let pruned_rows, pruned_texp = rows_of q (exec coord q) in
      Alcotest.(check int) "doomed shard not contacted" req_before
        (shard_requests coord doomed);
      Alcotest.(check bool) "pruned counter advanced" true
        ((Coordinator.traffic coord).Coordinator.pruned > pruned_before);
      (* The forced broadcast DOES contact it — that is the baseline the
         soundness check compares against. *)
      let broadcast_rows, broadcast_texp =
        rows_of q (no_err q (Coordinator.exec ~prune:false coord q))
      in
      Alcotest.(check int) "broadcast contacts it" (req_before + 1)
        (shard_requests coord doomed);
      (* The soundness contract: pruning never changes the answer. *)
      Alcotest.(check bool) "pruned == broadcast rows" true
        (sorted pruned_rows = sorted broadcast_rows);
      Alcotest.(check bool) "pruned == broadcast texp(e)" true
        (Time.equal pruned_texp broadcast_texp);
      ignore (before_texp);
      (* An insert into the pruned shard un-prunes it in one round trip:
         the routed write's ack refreshes the summary. *)
      let k = key_on doomed in
      ignore
        (exec coord
           (Printf.sprintf "INSERT INTO t VALUES (%d, 9) EXPIRES 200" k));
      let revived, _ = rows_of q (exec coord q) in
      Alcotest.(check int) "revived shard answers again" 3 (List.length revived))

(* ---------- (c) one trace id across coordinator and shards ---------- *)

let test_cross_node_trace () =
  with_cluster 3 (fun coord _servers _eps ->
      ignore (exec coord "CREATE TABLE t (k)");
      List.iter
        (fun k ->
          ignore
            (exec coord (Printf.sprintf "INSERT INTO t VALUES (%d) EXPIRES 99" k)))
        [ 1; 2; 3; 4; 5 ];
      let q = "SELECT * FROM t" in
      ignore (exec coord q);
      (* The coordinator finished its own entry for [q]; its id must
         also appear in entries recorded by shard nodes. *)
      let entries = Coordinator.recent_traces coord 50 in
      let own =
        match
          List.find_opt
            (fun (e : Wire.trace_entry) ->
              e.entry_name = q && e.node = "coordinator")
            entries
        with
        | Some e -> e
        | None -> Alcotest.fail "coordinator trace entry missing"
      in
      let same_trace =
        List.filter
          (fun (e : Wire.trace_entry) ->
            e.entry_trace_id = own.entry_trace_id)
          entries
      in
      let nodes =
        List.sort_uniq compare
          (List.map (fun (e : Wire.trace_entry) -> e.node) same_trace)
      in
      Alcotest.(check bool) "trace spans >= 2 nodes" true
        (List.length nodes >= 2);
      Alcotest.(check bool) "coordinator lane present" true
        (List.mem "coordinator" nodes);
      (* The coordinator lane carries the fan-out spans. *)
      Alcotest.(check bool) "rpc spans recorded" true
        (List.exists
           (fun (s : Wire.span) ->
             String.length s.span_name >= 4
             && String.sub s.span_name 0 4 = "rpc:")
           own.entry_spans);
      (* And the merged view exports as one Chrome trace containing
         both node names. *)
      let store_entry (e : Wire.trace_entry) =
        { Obs.Trace_store.node = e.node;
          trace_id = e.entry_trace_id;
          name = e.entry_name;
          started_at = e.started_at;
          total_us = e.entry_total_us;
          spans =
            List.map
              (fun (s : Wire.span) ->
                { Obs.Trace.id = s.span_id;
                  parent = s.parent_id;
                  name = s.span_name;
                  start_us = s.start_us;
                  duration_us = s.duration_us;
                  labels = s.labels
                })
              e.entry_spans
        }
      in
      let json = Obs.Trace_export.to_json (List.map store_entry same_trace) in
      let contains needle =
        let n = String.length needle and m = String.length json in
        let rec go i = i + n <= m && (String.sub json i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "export has a coordinator lane" true
        (contains "coordinator");
      Alcotest.(check bool) "export has a shard lane" true
        (List.exists
           (fun node -> node <> "coordinator" && contains node)
           nodes))

(* ---------- rebalance: add/remove preserves contents ---------- *)

let test_rebalance () =
  with_cluster 3 (fun coord _servers _eps ->
      List.iter (fun sql -> ignore (exec coord sql)) statements;
      let q = "SELECT * FROM pol" in
      let before, before_texp = rows_of q (exec coord q) in
      (* Grow to four shards... *)
      let extra = Server.create ~config:shard_config () in
      Server.start extra;
      Fun.protect
        ~finally:(fun () -> Server.stop extra)
        (fun () ->
          (match
             Coordinator.add_shard coord
               { Coordinator.host = "127.0.0.1"; port = Server.port extra }
           with
           | Ok _ -> ()
           | Error e -> Alcotest.fail ("add_shard: " ^ e));
          Alcotest.(check int) "map grew" 4
            (List.length (Coordinator.shard_map coord).Wire.shards);
          let after_add, add_texp = rows_of q (exec coord q) in
          Alcotest.(check bool) "same rows after add" true
            (sorted before = sorted after_add);
          Alcotest.(check bool) "same texp(e) after add" true
            (Time.equal before_texp add_texp);
          (* ...and shrink back to three. *)
          (match Coordinator.remove_shard coord 0 with
           | Ok _ -> ()
           | Error e -> Alcotest.fail ("remove_shard: " ^ e));
          Alcotest.(check int) "map shrank" 3
            (List.length (Coordinator.shard_map coord).Wire.shards);
          let after_remove, remove_texp = rows_of q (exec coord q) in
          Alcotest.(check bool) "same rows after remove" true
            (sorted before = sorted after_remove);
          Alcotest.(check bool) "same texp(e) after remove" true
            (Time.equal before_texp remove_texp)))

(* ---------- health: silent and amnesiac shards degrade ---------- *)

let test_health_unreachable () =
  with_cluster 3 (fun coord servers _eps ->
      Coordinator.heartbeat_now coord;
      (match Coordinator.health coord with
       | Wire.Health_ok, _ -> ()
       | _ -> Alcotest.fail "expected ok with all shards up");
      (* One shard goes silent: degraded, not critical. *)
      Server.stop (List.nth servers 2);
      Coordinator.heartbeat_now coord;
      (match Coordinator.health coord with
       | Wire.Health_degraded, firing ->
         Alcotest.(check bool) "unreachable rule fires" true
           (List.exists
              (fun (f : Wire.health_firing) ->
                f.rule_name = "unreachable_shards")
              firing)
       | level, _ ->
         Alcotest.fail
           ("expected degraded, got "
           ^ Wire.render_response (Wire.Health_reply { level; firing = [] })));
      (* A majority gone: critical. *)
      Server.stop (List.nth servers 1);
      Coordinator.heartbeat_now coord;
      match Coordinator.health coord with
      | Wire.Health_critical, _ -> ()
      | _ -> Alcotest.fail "expected critical with a majority down")

let test_health_stale_map () =
  with_shards 3 (fun servers endpoints ->
      let coord = Coordinator.create ~heartbeat_interval:0. ~shards:endpoints () in
      Fun.protect
        ~finally:(fun () -> Coordinator.close coord)
        (fun () ->
          (* Restart shard 1 on its old port: the replacement answers
             pings but reports map v0 — it lost its partition.  The
             staleness rule must surface that; a summary-refreshing
             pong alone must not mask it. *)
          let port = Server.port (List.nth servers 1) in
          Server.stop (List.nth servers 1);
          let replacement =
            Server.create
              ~config:{ shard_config with Server.port = port }
              ()
          in
          Server.start replacement;
          Fun.protect
            ~finally:(fun () -> Server.stop replacement)
            (fun () ->
              Coordinator.heartbeat_now coord;
              (* First round may find the connection dead and only
                 redial; give backoff one more deterministic round. *)
              Unix.sleepf 0.15;
              Coordinator.heartbeat_now coord;
              Unix.sleepf 0.3;
              Coordinator.heartbeat_now coord;
              match Coordinator.health coord with
              | (Wire.Health_degraded | Wire.Health_critical), firing ->
                Alcotest.(check bool) "stale rule fires" true
                  (List.exists
                     (fun (f : Wire.health_firing) ->
                       f.rule_name = "stale_shard_maps"
                       || f.rule_name = "unreachable_shards")
                     firing)
              | Wire.Health_ok, _ ->
                Alcotest.fail "restarted shard with no map read healthy")))

(* ---------- refusals: only per-node features are left ---------- *)

let string_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_refusals () =
  with_cluster 2 (fun coord _servers _eps ->
      ignore (exec coord "CREATE TABLE t (k, v)");
      ignore (exec coord "CREATE TABLE u (k, w)");
      ignore (exec coord "INSERT INTO t VALUES (1, 10) EXPIRES 50");
      ignore (exec coord "INSERT INTO u VALUES (1, 7) EXPIRES 50");
      let refused sql =
        match Coordinator.exec coord sql with
        | Wire.Err { message; _ } ->
          Alcotest.(check bool)
            (sql ^ ": refusal names the per-node features") true
            (string_contains message "per-node features")
        | r ->
          Alcotest.fail
            (Printf.sprintf "%s should be refused, got %s" sql
               (Wire.render_response r))
      in
      let answers sql =
        match Coordinator.exec coord sql with
        | Wire.Rows _ -> ()
        | r ->
          Alcotest.fail
            (Printf.sprintf "%s should answer, got %s" sql
               (Wire.render_response r))
      in
      (* The former refusals — AVG, GROUP BY, joins, projected set
         operations — now distribute (or gather-and-compute). *)
      answers "SELECT AVG(v) FROM t";
      answers "SELECT k, SUM(v) FROM t GROUP BY k";
      answers "SELECT * FROM t JOIN u ON t.k = u.k";
      answers "SELECT v FROM t EXCEPT SELECT w FROM u";
      (* Only per-node features remain refused, saying exactly that. *)
      refused "CREATE VIEW x AS SELECT * FROM t";
      refused "CREATE TRIGGER audit ON t";
      refused "CREATE CONSTRAINT cover ON SELECT k FROM t MIN 1";
      refused "CHECKPOINT")

(* ---------- GROUP BY / AVG / joins == single node ---------- *)

(* Run [statements] on both a cluster and a single node, then assert each
   of [qs] answers identically: same row set with identical per-row
   texps, identical texp(e), and the same listing when ORDER BY fixes
   the order.  These queries flow through the new routes: decomposed
   slice partials, co-partitioned and broadcast joins, and the
   gather-then-compute fallback. *)
let check_against_single_node ~shards ~statements qs =
  with_cluster shards (fun coord _servers _eps ->
      let single = Server.create ~config:shard_config () in
      Server.start single;
      Fun.protect
        ~finally:(fun () -> Server.stop single)
        (fun () ->
          let c =
            Client.connect ~host:"127.0.0.1" ~port:(Server.port single) ()
          in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              List.iter
                (fun sql ->
                  ignore (exec coord sql);
                  ignore (no_err sql (ok (Client.exec c sql))))
                statements;
              List.iter
                (fun sql ->
                  let cl_rows, cl_texp = rows_of sql (exec coord sql) in
                  let sn_rows, sn_texp =
                    rows_of sql (no_err sql (ok (Client.exec c sql)))
                  in
                  Alcotest.(check bool)
                    (sql ^ ": same rows and texps") true
                    (sorted cl_rows = sorted sn_rows);
                  if string_contains sql "ORDER BY" then
                    Alcotest.(check bool)
                      (sql ^ ": same listing order") true (cl_rows = sn_rows);
                  Alcotest.(check bool)
                    (sql ^ ": same texp(e)") true
                    (Time.equal cl_texp sn_texp))
                qs)))

let test_distributed_groupby_joins () =
  check_against_single_node ~shards:3
    ~statements:
      (statements
      @ [ (* a tag equal to a pol degree gives the broadcast join hits *)
          "INSERT INTO aux VALUES (12, 30) EXPIRES 22" ])
    [ (* grouped and global aggregates from slice partials *)
      "SELECT deg, COUNT(*) FROM pol GROUP BY deg ORDER BY deg";
      "SELECT deg, SUM(uid) FROM pol GROUP BY deg ORDER BY deg";
      "SELECT deg, MIN(uid) FROM pol GROUP BY deg ORDER BY deg";
      "SELECT deg, MAX(uid) FROM pol WHERE uid > 1 GROUP BY deg ORDER BY deg";
      "SELECT deg, AVG(uid) FROM pol GROUP BY deg ORDER BY deg";
      "SELECT AVG(deg) FROM pol";
      "SELECT AVG(deg) FROM pol AT 25";
      "SELECT deg, COUNT(*) FROM pol GROUP BY deg HAVING COUNT(*) > 1";
      "SELECT deg, COUNT(*) FROM pol GROUP BY deg ORDER BY deg AT 15";
      (* co-partitioned join: the condition equates both hash keys *)
      "SELECT * FROM pol JOIN aux ON pol.uid = aux.uid";
      (* broadcast join: join key is not the partitioning column *)
      "SELECT * FROM pol JOIN aux ON pol.deg = aux.tag";
      (* gather-then-compute fallback: projected EXCEPT, aggregate over
         a join, AT-qualified broadcast join *)
      "SELECT uid FROM pol EXCEPT SELECT uid FROM aux";
      "SELECT COUNT(*) FROM pol JOIN aux ON pol.uid = aux.uid";
      "SELECT * FROM pol JOIN aux ON pol.deg = aux.tag AT 15" ]

(* ---------- fault injection: a dead shard is one typed error ---------- *)

let test_shard_failed () =
  with_cluster 3 (fun coord servers _eps ->
      ignore (exec coord "CREATE TABLE t (k, v)");
      ignore (exec coord "CREATE TABLE u (k, w)");
      for k = 1 to 12 do
        ignore
          (exec coord
             (Printf.sprintf "INSERT INTO t VALUES (%d, %d) EXPIRES 100" k k));
        ignore
          (exec coord
             (Printf.sprintf "INSERT INTO u VALUES (%d, %d) EXPIRES 100" k k))
      done;
      (* Kill one shard after the inserts refreshed every summary: the
         fan-out still contacts it (its partition is provably
         non-empty), hits the dead socket mid-gather, and must surface
         exactly one typed [Shard_failed] naming the shard — partitions
         are disjoint, so answering from the survivors would silently
         drop rows. *)
      Server.stop (List.nth servers 1);
      let expect_shard_failed sql =
        match Coordinator.exec coord sql with
        | Wire.Err { code = Wire.Shard_failed; message } ->
          Alcotest.(check bool)
            (sql ^ ": error names shard 1") true
            (string_contains message "shard 1")
        | Wire.Err { message; _ } ->
          Alcotest.failf "%s: expected Shard_failed, got error %S" sql message
        | r ->
          Alcotest.failf "%s: expected Shard_failed, got %s" sql
            (Wire.render_response r)
      in
      expect_shard_failed "SELECT * FROM t";
      expect_shard_failed "SELECT k, SUM(v) FROM t GROUP BY k";
      expect_shard_failed "SELECT AVG(v) FROM t";
      expect_shard_failed "SELECT * FROM t JOIN u ON t.k = u.k";
      expect_shard_failed "SELECT * FROM t JOIN u ON t.v = u.w";
      (* A statement-level error is NOT a shard failure: the verdict of
         a live shard passes through with its own code. *)
      match Coordinator.exec coord "SELECT nope FROM t" with
      | Wire.Err { code = Wire.Shard_failed; message } ->
        Alcotest.failf "parse-level error misreported as Shard_failed: %s"
          message
      | Wire.Err _ -> ()
      | r ->
        Alcotest.failf "expected an error, got %s" (Wire.render_response r))

(* ---------- qcheck: cluster == single node on random workloads ---------- *)

(* The distributed-execution law: over random shard counts, workloads
   (straddling groups, duplicate tuples, empty partitions, nulls via
   expired rows) and clock advances, every aggregate and join answers
   exactly — same row set, same per-row texps, same texp(e) — as one
   node holding the union of the partitions. *)
let qcheck_cluster_matches_single_node =
  let gen =
    let open QCheck2.Gen in
    let row =
      triple (int_range (-3) 4) (int_range (-3) 4) (int_range 1 24)
    in
    let* shards = int_range 2 3 in
    let* t_rows = list_size (int_range 0 12) row in
    let* u_rows = list_size (int_range 0 6) row in
    let* adv = int_range 0 10 in
    return (shards, t_rows, u_rows, adv)
  in
  Generators.qtest "cluster GROUP BY/AVG/join == single node" ~count:10 gen
    (fun (shards, t_rows, u_rows, adv) ->
      let statements =
        [ "CREATE TABLE t (k, v)"; "CREATE TABLE u (k, w)" ]
        @ List.map
            (fun (k, v, e) ->
              Printf.sprintf "INSERT INTO t VALUES (%d, %d) EXPIRES %d" k v e)
            t_rows
        @ List.map
            (fun (k, w, e) ->
              Printf.sprintf "INSERT INTO u VALUES (%d, %d) EXPIRES %d" k w e)
            u_rows
        @ (if adv > 0 then [ Printf.sprintf "ADVANCE TO %d" adv ] else [])
      in
      check_against_single_node ~shards ~statements
        [ "SELECT k, COUNT(*) FROM t GROUP BY k";
          "SELECT k, SUM(v) FROM t GROUP BY k";
          "SELECT k, AVG(v) FROM t GROUP BY k";
          "SELECT AVG(v) FROM t";
          "SELECT k, COUNT(*) FROM t GROUP BY k HAVING COUNT(*) > 1";
          "SELECT * FROM t JOIN u ON t.k = u.k";
          "SELECT * FROM t JOIN u ON t.v = u.w";
          "SELECT v FROM t EXCEPT SELECT w FROM u" ];
      true)

(* ---------- global aggregates: combined from shard partials ---------- *)

let test_aggregate_combine () =
  with_cluster 3 (fun coord _servers _eps ->
      let single = Server.create ~config:shard_config () in
      Server.start single;
      Fun.protect
        ~finally:(fun () -> Server.stop single)
        (fun () ->
          let c =
            Client.connect ~host:"127.0.0.1" ~port:(Server.port single) ()
          in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              List.iter
                (fun sql ->
                  ignore (exec coord sql);
                  ignore (no_err sql (ok (Client.exec c sql))))
                statements;
              List.iter
                (fun sql ->
                  let cl_rows, cl_texp = rows_of sql (exec coord sql) in
                  let sn_rows, sn_texp =
                    rows_of sql (no_err sql (ok (Client.exec c sql)))
                  in
                  (* Identical aggregate values; texps are conservative
                     on the cluster side — never later than the single
                     node's exact analysis, which sees the whole
                     partition at once. *)
                  Alcotest.(check bool)
                    (sql ^ ": same values") true
                    (List.map fst cl_rows = List.map fst sn_rows);
                  Alcotest.(check bool)
                    (sql ^ ": row texp sound") true
                    (List.for_all2
                       (fun (_, cl) (_, sn) -> Time.(cl <= sn))
                       cl_rows sn_rows);
                  Alcotest.(check bool)
                    (sql ^ ": texp(e) sound") true
                    Time.(cl_texp <= sn_texp))
                [ "SELECT COUNT(*) FROM pol";
                  "SELECT SUM(deg) FROM pol";
                  "SELECT MIN(deg) FROM pol";
                  "SELECT MAX(deg) FROM pol";
                  "SELECT COUNT(*) FROM pol AT 35";
                  "SELECT MAX(tag) FROM aux AT 30" ])))

(* ---------- approximate aggregates: merged sketch partials ---------- *)

let test_sketch_merge () =
  with_cluster 3 (fun coord _servers _eps ->
      ignore (exec coord "CREATE TABLE t (k, v)");
      let n = 90 in
      for k = 1 to n do
        (* A third expires at 10, the rest at 100 + k. *)
        let texp = if k mod 3 = 0 then 10 else 100 + k in
        ignore
          (exec coord
             (Printf.sprintf "INSERT INTO t VALUES (%d, %d) EXPIRES %d" k
                (k * 2) texp))
      done;
      ignore (exec coord "ADVANCE TO 50");
      let live = n - (n / 3) in
      (match rows_of "approx" (exec coord "SELECT APPROX_COUNT(0.1) FROM t") with
       | [ ([ Value.Int est; Value.Float within ], _) ], _ ->
         Alcotest.(check bool) "estimate within the reported bound" true
           (Float.abs (float_of_int (est - live)) <= within);
         Alcotest.(check bool) "bound respects epsilon" true
           (within <= (0.1 *. float_of_int live) +. 1.)
       | rows, _ ->
         Alcotest.failf "unexpected APPROX_COUNT result (%d rows)"
           (List.length rows));
      let sample_rows, _ =
        rows_of "sample" (exec coord "SELECT SAMPLE(7) FROM t")
      in
      Alcotest.(check int) "sample has k rows" 7 (List.length sample_rows);
      List.iter
        (fun (row, texp) ->
          Alcotest.(check bool) "sampled row is live" true
            Time.(texp > Time.of_int 50);
          match row with
          | [ Value.Int k; Value.Int v ] ->
            Alcotest.(check bool) "sampled row was inserted" true
              (v = 2 * k && k mod 3 <> 0)
          | _ -> Alcotest.fail "unexpected sampled row shape")
        sample_rows;
      (* AT is applied at the coordinator over the same partials: far
         enough out, everything is dead. *)
      (match
         rows_of "approx at" (exec coord "SELECT APPROX_COUNT(0.1) FROM t AT 500")
       with
       | [ ([ Value.Int est; _ ], _) ], _ ->
         Alcotest.(check int) "nothing live at 500" 0 est
       | rows, _ ->
         Alcotest.failf "unexpected APPROX_COUNT AT result (%d rows)"
           (List.length rows)))

(* ---------- the cluster-wide expiration forecast ---------- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let report_live (r : Obs.Horizon.report) =
  List.fold_left
    (fun acc tb -> acc + Obs.Horizon.live tb)
    0 r.Obs.Horizon.tables

(* Per-shard horizon partials merge bucket-wise into exactly the
   profile of one node holding every row — hash partitions are
   disjoint, so the addition is exact, not approximate. *)
let test_horizon_cluster () =
  with_cluster 3 (fun coord _servers _endpoints ->
      List.iter (fun sql -> ignore (exec coord sql)) statements;
      let union = Expirel_sqlx.Interp.create () in
      List.iter
        (fun sql ->
          List.iter
            (function
              | Ok _ -> ()
              | Error e -> Alcotest.failf "%s: %s" sql e)
            (Expirel_sqlx.Interp.exec_script union (sql ^ ";")))
        statements;
      let merged, per_shard = ok (Coordinator.horizon coord) in
      let single = Expirel_sqlx.Interp.horizon union in
      Alcotest.(check bool) "merged tables equal the single-node profile"
        true
        (merged.Obs.Horizon.tables = single.Obs.Horizon.tables);
      Alcotest.(check int) "now tracks the cluster clock"
        single.Obs.Horizon.now merged.Obs.Horizon.now;
      Alcotest.(check int) "three shards in the breakdown" 3
        (List.length per_shard);
      Alcotest.(check int) "per-shard live rows sum to the total"
        (report_live merged)
        (List.fold_left (fun acc (_, n) -> acc + n) 0 per_shard);
      (* per-table restriction, and unknown tables answer Error *)
      let only_pol, _ = ok (Coordinator.horizon ~table:"pol" coord) in
      Alcotest.(check (list string)) "restricted to pol" [ "pol" ]
        (List.map
           (fun tb -> tb.Obs.Horizon.name)
           only_pol.Obs.Horizon.tables);
      (match Coordinator.horizon ~table:"ghost" coord with
       | Error _ -> ()
       | Ok _ -> Alcotest.fail "unknown table accepted");
      (* the statement path renders the same forecast with the
         per-shard breakdown *)
      (match exec coord "SHOW HORIZON" with
       | Wire.Ok_msg m ->
         List.iter
           (fun sub ->
             Alcotest.(check bool) ("SHOW HORIZON mentions " ^ sub) true
               (contains ~sub m))
           [ "horizon now=9"; "shard 0: live="; "shard 2: live=";
             "table aux:"; "table pol:" ]
       | r -> Alcotest.fail ("SHOW HORIZON: " ^ Wire.render_response r));
      (* both Prometheus surfaces pass the shared exposition lint *)
      let page = ok (Coordinator.horizon_page coord) in
      Test_obs.check_exposition ~what:"merged horizon page" page;
      Alcotest.(check bool) "page exports the merged histogram" true
        (contains ~sub:"# TYPE expirel_horizon_rows histogram" page);
      let metrics = Coordinator.metrics coord in
      Test_obs.check_exposition ~what:"coordinator metrics page" metrics;
      List.iter
        (fun sub ->
          Alcotest.(check bool) ("coordinator exposes " ^ sub) true
            (contains ~sub metrics))
        [ "expirel_cluster_live_rows";
          "expirel_cluster_horizon_expiring_soon";
          "expirel_cluster_horizon_fanout_events";
          "expirel_build_info{version=\"" ^ Metrics.build_version ^ "\"";
          "expirel_uptime_seconds" ])

(* The predictive storm rule fires on the coordinator *before* any
   clock movement — the merged forecast sees the drop coming — and
   clears once the storm has passed. *)
let test_cluster_storm_rule () =
  with_cluster 2 (fun coord _servers _endpoints ->
      ignore (exec coord "CREATE TABLE s (k, v)");
      for i = 1 to 10 do
        ignore
          (exec coord (Printf.sprintf "INSERT INTO s VALUES (%d, 0) EXPIRES 5" i))
      done;
      (match Coordinator.health coord with
       | Wire.Health_critical, firing ->
         Alcotest.(check bool) "cluster_expiration_storm names itself" true
           (List.exists
              (fun f -> f.Wire.rule_name = "cluster_expiration_storm")
              firing)
       | _ -> Alcotest.fail "storm not predicted before the drop");
      ignore (exec coord "ADVANCE TO 6");
      match Coordinator.health coord with
      | Wire.Health_ok, _ -> ()
      | _ -> Alcotest.fail "health still firing after the storm passed")

let suite =
  [ Alcotest.test_case "scatter-gather == single node" `Quick
      test_matches_single_node;
    Alcotest.test_case "inserts land on shard_owner's pick" `Quick
      test_insert_routing;
    Alcotest.test_case "expired shards are pruned, answers unchanged" `Quick
      test_pruning;
    Alcotest.test_case "one trace id spans coordinator and shards" `Quick
      test_cross_node_trace;
    Alcotest.test_case "rebalance preserves contents" `Quick test_rebalance;
    Alcotest.test_case "health: unreachable shards degrade" `Quick
      test_health_unreachable;
    Alcotest.test_case "health: restarted shard reads stale" `Quick
      test_health_stale_map;
    Alcotest.test_case "only per-node features are refused" `Quick
      test_refusals;
    Alcotest.test_case "GROUP BY/AVG/joins match a single node" `Quick
      test_distributed_groupby_joins;
    Alcotest.test_case "a dead shard surfaces as Shard_failed" `Quick
      test_shard_failed;
    qcheck_cluster_matches_single_node;
    Alcotest.test_case "global aggregates combine from shard partials" `Quick
      test_aggregate_combine;
    Alcotest.test_case "APPROX_COUNT/SAMPLE merge sketch partials" `Quick
      test_sketch_merge;
    Alcotest.test_case "horizon: shard partials merge to the union profile"
      `Quick test_horizon_cluster;
    Alcotest.test_case "horizon: storm rule fires before the drop" `Quick
      test_cluster_storm_rule ]
