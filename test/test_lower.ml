open Expirel_core
open Expirel_sqlx

let catalog = function
  | "pol" -> Some [ "uid"; "deg" ]
  | "el" -> Some [ "uid"; "deg" ]
  | "s" -> Some [ "sid"; "uid" ]
  | _ -> None

let lower text = Lower.lower_query ~catalog (Parser.parse_query text)

let check_expr name expected text =
  Alcotest.(check string) name expected (Algebra.to_string (lower text).Lower.expr)

let test_plain_select () =
  check_expr "projection" "pi_(2,1)(pol)" "SELECT deg, uid FROM pol";
  check_expr "star is identity" "pol" "SELECT * FROM pol";
  check_expr "where becomes sigma" "pi_(1)(sigma_(#2 > 30)(pol))"
    "SELECT uid FROM pol WHERE deg > 30"

let test_join () =
  let { Lower.expr; columns; _ } =
    lower "SELECT pol.uid, s.sid FROM pol JOIN s ON pol.uid = s.uid"
  in
  Alcotest.(check string) "join lowering"
    "pi_(1,3)((pol joinexp_(#1 = #4) s))" (Algebra.to_string expr);
  Alcotest.(check (list string)) "qualified output labels"
    [ "pol.uid"; "sid" ] columns

let test_join_star_labels () =
  let { Lower.columns; _ } = lower "SELECT * FROM pol JOIN el ON pol.uid = el.uid" in
  (* Every shared column name is qualified. *)
  Alcotest.(check (list string)) "labels"
    [ "pol.uid"; "pol.deg"; "el.uid"; "el.deg" ] columns

let test_aggregate () =
  let { Lower.expr; columns; _ } =
    lower "SELECT deg, COUNT(*) FROM pol GROUP BY deg"
  in
  (* The Figure 3(a) shape: project over agg^exp. *)
  Alcotest.(check string) "histogram"
    "pi_(2,3)(agg_({2},count)(pol))" (Algebra.to_string expr);
  Alcotest.(check (list string)) "labels" [ "deg"; "count" ] columns;
  check_expr "sum with where"
    "pi_(1,3)(agg_({1},sum_2)(sigma_(#2 > 0)(pol)))"
    "SELECT uid, SUM(deg) FROM pol WHERE deg > 0 GROUP BY uid"

let test_set_ops () =
  check_expr "except" "(pi_(1)(pol) -exp pi_(1)(el))"
    "SELECT uid FROM pol EXCEPT SELECT uid FROM el";
  check_expr "union" "(pi_(1)(pol) uexp pi_(1)(el))"
    "SELECT uid FROM pol UNION SELECT uid FROM el";
  check_expr "intersect" "(pi_(1)(pol) nexp pi_(1)(el))"
    "SELECT uid FROM pol INTERSECT SELECT uid FROM el"

let string_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let expect_error text fragment =
  match lower text with
  | exception Lower.Error msg ->
    if not (string_contains msg fragment) then
      Alcotest.failf "error %S lacks %S" msg fragment
  | _ -> Alcotest.failf "expected lowering error for %S" text

let test_errors () =
  expect_error "SELECT x FROM pol" "unknown column x";
  expect_error "SELECT uid FROM missing" "unknown table missing";
  expect_error "SELECT uid FROM pol JOIN el ON uid = deg" "ambiguous column uid";
  expect_error "SELECT deg FROM pol GROUP BY deg" "GROUP BY without an aggregate";
  expect_error "SELECT uid, COUNT(*) FROM pol GROUP BY deg" "not in GROUP BY";
  expect_error "SELECT COUNT(*), SUM(deg) FROM pol GROUP BY deg"
    "at most one aggregate";
  expect_error "SELECT uid FROM pol UNION SELECT uid, deg FROM el"
    "different widths";
  expect_error "SELECT pol.uid FROM el" "unknown column pol.uid";
  expect_error "SELECT APPROX_COUNT(0.1), uid FROM pol" "cannot be mixed";
  expect_error "SELECT APPROX_COUNT(0.1) FROM pol GROUP BY deg" "GROUP BY"

(* A global aggregate lowers to agg^exp over the single empty-key
   partition — no GROUP BY needed (this unlocks the coordinator's
   per-shard combine). *)
let test_global_aggregate () =
  let { Lower.expr; columns; _ } = lower "SELECT COUNT(*) FROM pol" in
  Alcotest.(check string) "global count"
    "pi_(3)(agg_({},count)(pol))" (Algebra.to_string expr);
  Alcotest.(check (list string)) "labels" [ "count" ] columns;
  check_expr "global sum with where" "pi_(3)(agg_({},sum_2)(sigma_(#2 > 0)(pol)))"
    "SELECT SUM(deg) FROM pol WHERE deg > 0"

let test_approx () =
  let { Lower.expr; columns; approx } = lower "SELECT APPROX_COUNT(0.05) FROM pol" in
  Alcotest.(check string) "child is the filtered source" "pol"
    (Algebra.to_string expr);
  Alcotest.(check (list string)) "labels" [ "approx_count"; "within" ] columns;
  (match approx with
   | Some (Expirel_exec.Approx.Count { epsilon }) ->
     Alcotest.(check (float 0.)) "epsilon" 0.05 epsilon
   | _ -> Alcotest.fail "expected a Count spec");
  let { Lower.columns; approx; _ } = lower "SELECT SAMPLE(3) FROM pol WHERE deg > 0" in
  Alcotest.(check (list string)) "sample keeps child labels"
    [ "uid"; "deg" ] columns;
  (match approx with
   | Some (Expirel_exec.Approx.Sample { k }) -> Alcotest.(check int) "k" 3 k
   | _ -> Alcotest.fail "expected a Sample spec")

let test_delete_cond () =
  let p =
    Lower.lower_cond_for_table ~columns:[ "a"; "b" ] ~table:"t"
      (match Parser.parse_statement "DELETE FROM t WHERE b = 2" with
       | Ast.Delete (_, Some c) -> c
       | _ -> Alcotest.fail "parse")
  in
  Alcotest.(check string) "resolved against table" "#2 = 2" (Predicate.to_string p)

let suite =
  [ Alcotest.test_case "plain selects" `Quick test_plain_select;
    Alcotest.test_case "joins and qualification" `Quick test_join;
    Alcotest.test_case "star labels over joins" `Quick test_join_star_labels;
    Alcotest.test_case "aggregates lower to agg^exp + projection" `Quick
      test_aggregate;
    Alcotest.test_case "set operations" `Quick test_set_ops;
    Alcotest.test_case "resolution errors" `Quick test_errors;
    Alcotest.test_case "global aggregates" `Quick test_global_aggregate;
    Alcotest.test_case "approximate aggregates" `Quick test_approx;
    Alcotest.test_case "delete conditions" `Quick test_delete_cond ]
