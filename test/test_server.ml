(* End-to-end tests of the TCP server: results carry validity
   information over the wire, subscriptions push events at exact logical
   times, and — under N client threads hammering one server — the logical
   clock is monotone and no client ever receives an expired tuple. *)

open Expirel_core
open Expirel_storage
open Expirel_server

let fin = Time.of_int

let with_server ?config f =
  let server = Server.create ?config () in
  Server.start server;
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () -> f server (Server.port server))

let with_client port f =
  let client = Client.connect ~host:"127.0.0.1" ~port () in
  Fun.protect ~finally:(fun () -> Client.close client) (fun () -> f client)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail e

let exec client sql = ok (Client.exec client sql)

let load_profiles client =
  ok (Client.exec_ok client "CREATE TABLE pol (uid, deg)");
  ok (Client.exec_ok client "INSERT INTO pol VALUES (1, 25) EXPIRES 10");
  ok (Client.exec_ok client "INSERT INTO pol VALUES (2, 25) EXPIRES 15");
  ok (Client.exec_ok client "INSERT INTO pol VALUES (3, 35) EXPIRES 10")

(* ---------- smoke: results travel with their validity ---------- *)

let test_smoke () =
  with_server (fun _server port ->
      with_client port (fun client ->
          ok (Client.ping client);
          load_profiles client;
          (match exec client "SELECT uid, deg FROM pol" with
           | Wire.Rows { columns; rows; texp_e; recomputed = _ } ->
             Alcotest.(check (list string)) "columns" [ "uid"; "deg" ] columns;
             Alcotest.(check int) "three rows" 3 (List.length rows);
             (* each row arrives with its own texp... *)
             List.iter
               (fun (row, texp) ->
                 match row with
                 | [ Value.Int 1; _ ] | [ Value.Int 3; _ ] ->
                   Alcotest.(check bool) "short-lived row" true (texp = fin 10)
                 | [ Value.Int 2; _ ] ->
                   Alcotest.(check bool) "long-lived row" true (texp = fin 15)
                 | _ -> Alcotest.fail "unexpected row")
               rows;
             (* ...and the whole result with texp(e): a monotone query
                is maintainable by local expiration forever *)
             Alcotest.(check bool) "monotone texp(e) = inf" true (texp_e = Time.Inf)
           | r -> Alcotest.fail ("expected rows, got " ^ Wire.render_response r));
          (* a non-monotone query's texp(e) is finite: the COUNT per
             degree changes the moment the first member expires *)
          (match exec client "SELECT deg, COUNT(*) FROM pol GROUP BY deg" with
           | Wire.Rows { texp_e; _ } ->
             Alcotest.(check bool) "aggregate texp(e) is finite" true
               (Time.is_finite texp_e)
           | r -> Alcotest.fail ("expected rows, got " ^ Wire.render_response r));
          (* a parse error is an answer, not a dropped connection *)
          (match exec client "SELEKT 1" with
           | Wire.Err { code = Wire.Parse_error; _ } -> ()
           | r -> Alcotest.fail ("expected parse error, got " ^ Wire.render_response r));
          (match ok (Client.stats client) with
           | s ->
             Alcotest.(check bool) "requests counted" true (s.Wire.requests_total >= 6);
             Alcotest.(check int) "one active connection" 1 s.Wire.connections_active)))

(* ---------- subscriptions: exact logical times, in order ---------- *)

let test_subscription_event_order () =
  with_server (fun _server port ->
      with_client port (fun client ->
          load_profiles client;
          ok (Client.subscribe client ~name:"watch" ~query:"SELECT uid FROM pol");
          ok (Client.exec_ok client "ADVANCE TO 20");
          (* the events were pushed before the ADVANCE was acknowledged *)
          let events = Client.events client in
          let expired =
            List.filter_map
              (function
                | Wire.Row_expired { subscription = "watch"; row; at } ->
                  Some (row, at)
                | _ -> None)
              events
          in
          Alcotest.(check int) "all three rows expired" 3 (List.length expired);
          let ats = List.map snd expired in
          Alcotest.(check bool) "exact logical times" true
            (List.sort compare ats = [ fin 10; fin 10; fin 15 ]);
          Alcotest.(check bool) "delivered in logical-time order" true
            (ats = List.sort Time.compare ats);
          (* uid 2 is the one that lives to 15 *)
          (match List.rev expired with
           | ([ Value.Int 2 ], at) :: _ ->
             Alcotest.(check bool) "last event is uid 2 at 15" true (at = fin 15)
           | _ -> Alcotest.fail "wrong final event");
          ok (Client.unsubscribe client "watch")))

let test_unsubscribe_ownership () =
  (* A connection may only tear down its own subscriptions. *)
  with_server (fun _server port ->
      with_client port (fun c1 ->
          with_client port (fun c2 ->
              ok (Client.exec_ok c1 "CREATE TABLE t (x)");
              ok (Client.subscribe c1 ~name:"mine" ~query:"SELECT x FROM t");
              (match Client.unsubscribe c2 "mine" with
               | Error _ -> ()
               | Ok () -> Alcotest.fail "foreign unsubscribe succeeded");
              ok (Client.unsubscribe c1 "mine"))))

(* ---------- concurrency: monotone clock, no expired tuples ---------- *)

let test_concurrent_clients () =
  let threads = 8 in
  let rounds = 25 in
  with_server (fun _server port ->
      with_client port (fun admin ->
          ok (Client.exec_ok admin "CREATE TABLE s (sid, owner)"));
      let failures = Array.make threads None in
      let fail t msg = if failures.(t) = None then failures.(t) <- Some msg in
      let worker t () =
        with_client port (fun client ->
            (* never Alcotest.fail off the main thread — record instead *)
            let expect_ok what = function
              | Ok () -> ()
              | Error e -> fail t (what ^ ": " ^ e)
            in
            let run sql =
              match Client.exec client sql with
              | Ok r -> r
              | Error e ->
                fail t (sql ^ ": " ^ e);
                Wire.Bye
            in
            let last_now = ref (fin 0) in
            let observe_now () =
              match run "SHOW NOW" with
              | Wire.Ok_msg m ->
                (match int_of_string_opt m with
                 | Some n ->
                   let now = fin n in
                   if Time.compare now !last_now < 0 then
                     fail t "clock ran backwards";
                   last_now := now
                 | None -> fail t ("unparsable SHOW NOW: " ^ m))
              | r -> fail t ("SHOW NOW: " ^ Wire.render_response r)
            in
            for i = 1 to rounds do
              (* writes: one row expiring past any clock this test can
                 reach, one short-lived row (TTL is relative, so it is
                 valid whatever the clock says by now) *)
              expect_ok "insert"
                (Client.exec_ok client
                   (Printf.sprintf
                      "INSERT INTO s VALUES (%d, %d) EXPIRES 1000000"
                      ((t * rounds) + i) t));
              expect_ok "insert ttl"
                (Client.exec_ok client
                   (Printf.sprintf "INSERT INTO s VALUES (%d, %d) TTL 2"
                      (-((t * rounds) + i)) t));
              if i mod 5 = 0 then expect_ok "tick" (Client.exec_ok client "TICK");
              observe_now ();
              (* the clock observed above is a lower bound for the clock
                 at which this SELECT runs: every returned tuple must
                 still be alive, i.e. texp strictly beyond it *)
              (match run "SELECT sid, owner FROM s" with
               | Wire.Rows { rows; _ } ->
                 List.iter
                   (fun (_, texp) ->
                     if Time.compare texp !last_now <= 0 then
                       fail t "received an expired tuple")
                   rows
               | Wire.Err { message; _ } -> fail t ("SELECT failed: " ^ message)
               | r -> fail t ("SELECT: " ^ Wire.render_response r));
              observe_now ()
            done)
      in
      let ts = List.init threads (fun t -> Thread.create (worker t) ()) in
      List.iter Thread.join ts;
      Array.iteri
        (fun t -> function
          | Some msg -> Alcotest.fail (Printf.sprintf "client %d: %s" t msg)
          | None -> ())
        failures;
      (* the server survived: it still answers, and the clock advanced *)
      with_client port (fun client ->
          match exec client "SHOW NOW" with
          | Wire.Ok_msg m ->
            Alcotest.(check bool) "clock advanced" true (int_of_string m > 0)
          | r -> Alcotest.fail (Wire.render_response r)))

(* ---------- limits: connection cap and request timeout ---------- *)

let test_connection_cap () =
  let config = { Server.default_config with max_connections = 2 } in
  with_server ~config (fun _server port ->
      with_client port (fun c1 ->
          with_client port (fun c2 ->
              ok (Client.ping c1);
              ok (Client.ping c2);
              with_client port (fun c3 ->
                  match Client.ping c3 with
                  | Error e ->
                    Alcotest.(check bool) "refused as overloaded" true
                      (String.length e > 0)
                  | Ok () -> Alcotest.fail "third connection admitted over cap"))));
  (* a slot frees up once a capped connection closes *)
  with_server ~config (fun _server port ->
      with_client port (fun c1 -> ok (Client.ping c1));
      with_client port (fun c2 -> ok (Client.ping c2)))

let test_request_timeout () =
  let config = { Server.default_config with request_timeout = 0.15 } in
  with_server ~config (fun server port ->
      with_client port (fun client ->
          ok (Client.exec_ok client "CREATE TABLE t (x)");
          (* an in-process writer wedges the database... *)
          Rwlock.write_lock (Server.lock server);
          Fun.protect
            ~finally:(fun () -> Rwlock.write_unlock (Server.lock server))
            (fun () ->
              match exec client "SELECT x FROM t" with
              | Wire.Err { code = Wire.Timeout; _ } -> ()
              | r ->
                Alcotest.fail ("expected timeout, got " ^ Wire.render_response r));
          (* ...and service resumes once it lets go *)
          match exec client "SELECT x FROM t" with
          | Wire.Rows _ -> ()
          | r -> Alcotest.fail ("expected rows, got " ^ Wire.render_response r)))

(* ---------- observability over the wire ---------- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let with_temp_dir f =
  let dir = Filename.temp_dir "expirel" "obs" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun file -> Sys.remove (Filename.concat dir file))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let run_observable_workload client =
  load_profiles client;
  ok
    (Client.exec_ok client
       "CREATE VIEW deg_counts AS SELECT deg, COUNT(*) FROM pol GROUP BY deg");
  List.iter
    (fun sql ->
      match exec client sql with
      | Wire.Rows _ -> ()
      | r -> Alcotest.fail ("expected rows, got " ^ Wire.render_response r))
    [ "SELECT uid, deg FROM pol";
      "SELECT deg, COUNT(*) FROM pol GROUP BY deg" ];
  ok (Client.exec_ok client "ADVANCE TO 12")

(* METRICS must expose, in valid Prometheus text format, the request
   latency histogram (with the once-missing 500 ms bucket), per-operator
   eval time, per-stage time, eager expiration churn and the
   expiration-domain gauges. *)
let test_metrics_exposition () =
  with_server (fun _server port ->
      with_client port (fun client ->
          run_observable_workload client;
          let text = ok (Client.metrics client) in
          List.iter
            (fun sub ->
              Alcotest.(check bool) ("exposes: " ^ sub) true
                (contains ~sub text))
            [ "# TYPE expirel_request_duration_seconds histogram";
              "expirel_request_duration_seconds_bucket{le=\"0.5\"}";
              "expirel_request_duration_seconds_bucket{le=\"+Inf\"}";
              "expirel_eval_operator_duration_seconds_bucket\
               {operator=\"seq-scan\"";
              "expirel_eval_operator_duration_seconds_bucket\
               {operator=\"aggregate\"";
              "expirel_request_stage_duration_seconds_bucket{stage=\"parse\"";
              "expirel_request_stage_duration_seconds_bucket{stage=\"eval\"";
              "expirel_request_stage_duration_seconds_bucket\
               {stage=\"rwlock_wait\"";
              "expirel_tuples_expired_total{mode=\"eager\"} 2";
              "expirel_expiration_index_depth ";
              "expirel_view_texp_horizon_ticks{view=\"deg_counts\"}";
              "expirel_connections_active 1" ];
          (* every line is a comment or a `name{labels} value` sample *)
          String.split_on_char '\n' text
          |> List.iter (fun line ->
                 if line <> "" && line.[0] <> '#' then
                   match String.rindex_opt line ' ' with
                   | None -> Alcotest.failf "unparsable line %S" line
                   | Some i ->
                     let v =
                       String.sub line (i + 1) (String.length line - i - 1)
                     in
                     if v <> "+Inf" && float_of_string_opt v = None then
                       Alcotest.failf "bad sample value in %S" line);
          (* no durable store: the replication providers raise, so the
             lag gauges are skipped — declared but sample-less *)
          Alcotest.(check bool) "repl lag declared" true
            (contains ~sub:"# TYPE expirel_repl_lag_records gauge" text);
          String.split_on_char '\n' text
          |> List.iter (fun line ->
                 Alcotest.(check bool) "no repl lag sample without a store"
                   false
                   (String.length line > 24
                    && String.sub line 0 24 = "expirel_repl_lag_records"));
          (* STATS is still wire-compatible and carries the 500 ms bound *)
          let s = ok (Client.stats client) in
          Alcotest.(check bool) "stats has the 500ms bucket" true
            (List.mem_assoc 500_000 s.Wire.latency_buckets);
          Alcotest.(check int) "stats expired count agrees" 2
            s.Wire.tuples_expired))

(* On a lazy server the same churn is labeled mode="lazy" and counted
   when VACUUM reclaims, not when the clock passes texp. *)
let test_metrics_lazy_mode () =
  let config = { Server.default_config with policy = Database.Lazy } in
  with_server ~config (fun _server port ->
      with_client port (fun client ->
          load_profiles client;
          ok (Client.exec_ok client "ADVANCE TO 20");
          ok (Client.exec_ok client "VACUUM");
          let text = ok (Client.metrics client) in
          Alcotest.(check bool) "lazy churn labeled" true
            (contains ~sub:"expirel_tuples_expired_total{mode=\"lazy\"} 3" text);
          Alcotest.(check bool) "no eager samples on a lazy server" false
            (contains ~sub:"{mode=\"eager\"}" text)))

(* A durable primary has WAL and replication-lag gauges with samples. *)
let test_metrics_durable_primary () =
  with_temp_dir (fun dir ->
      let config = { Server.default_config with data_dir = Some dir } in
      with_server ~config (fun _server port ->
          with_client port (fun client ->
              load_profiles client;
              let text = ok (Client.metrics client) in
              List.iter
                (fun sub ->
                  Alcotest.(check bool) ("exposes: " ^ sub) true
                    (contains ~sub text))
                [ "expirel_wal_position ";
                  "expirel_repl_lag_records 0";
                  "expirel_repl_followers 0" ])))

(* SLOW over the wire: the span breakdown of the slowest statements. *)
let test_slow_queries_e2e () =
  with_server (fun _server port ->
      with_client port (fun client ->
          run_observable_workload client;
          let qs = ok (Client.slow_queries client 3) in
          Alcotest.(check int) "asked for three" 3 (List.length qs);
          (match qs with
           | a :: b :: c :: _ ->
             Alcotest.(check bool) "slowest first" true
               (a.Wire.total_us >= b.Wire.total_us
                && b.Wire.total_us >= c.Wire.total_us)
           | _ -> assert false);
          let all = ok (Client.slow_queries client 100) in
          let sel =
            match
              List.find_opt
                (fun q -> q.Wire.statement = "SELECT uid, deg FROM pol")
                all
            with
            | Some q -> q
            | None -> Alcotest.fail "traced SELECT not in slow log"
          in
          let names =
            List.map (fun (s : Wire.span) -> s.span_name) sel.Wire.spans
          in
          List.iter
            (fun stage ->
              Alcotest.(check bool) ("span: " ^ stage) true
                (List.mem stage names))
            [ "parse"; "lower"; "plan"; "eval"; "rwlock_wait"; "op:seq-scan";
              "op:project" ];
          List.iter
            (fun (s : Wire.span) ->
              Alcotest.(check bool) "span within request" true
                (s.start_us >= 0
                 && s.start_us + s.duration_us <= sel.Wire.total_us))
            sel.Wire.spans;
          (* every slow entry is stamped with its request's trace id,
             so it joins against the TRACE export *)
          Alcotest.(check bool) "trace id stamped" true
            (String.length sel.Wire.trace_id > 0);
          let traces = ok (Client.traces client 100) in
          match
            List.find_opt
              (fun (e : Wire.trace_entry) ->
                e.entry_trace_id = sel.Wire.trace_id)
              traces
          with
          | Some e ->
            Alcotest.(check string) "joined trace is the same statement"
              sel.Wire.statement e.Wire.entry_name
          | None -> Alcotest.fail "slow entry's trace id not in TRACE"))

(* EXPLAIN ANALYZE travels as a plain Exec: the server runs the profiled
   execution and ships the annotated plan as a message. *)
let test_explain_analyze_e2e () =
  with_server (fun _server port ->
      with_client port (fun client ->
          load_profiles client;
          match exec client "EXPLAIN ANALYZE SELECT uid FROM pol WHERE deg = 25" with
          | Wire.Ok_msg text ->
            List.iter
              (fun sub ->
                Alcotest.(check bool) ("reports: " ^ sub) true
                  (contains ~sub text))
              [ "seq-scan pol"; "(est="; "rows=2"; "dropped=0"; "time=";
                "rows: 2"; "total:" ]
          | r -> Alcotest.fail ("expected a message, got " ^ Wire.render_response r)))

(* TRACE over the wire: recent request traces, newest first, stamped
   with the node name; Exec_traced records under the caller's trace id
   with the caller's span as root parent. *)
let test_trace_e2e () =
  let config = { Server.default_config with node_name = "primary" } in
  with_server ~config (fun _server port ->
      with_client port (fun client ->
          run_observable_workload client;
          let entries = ok (Client.traces client 100) in
          Alcotest.(check bool) "workload recorded" true
            (List.length entries >= 5);
          (match Client.traces client 2 with
           | Ok [ a; b ] ->
             Alcotest.(check bool) "newest first" true
               (a.Wire.started_at >= b.Wire.started_at)
           | Ok es -> Alcotest.failf "asked for 2, got %d" (List.length es)
           | Error e -> Alcotest.fail e);
          let sel =
            match
              List.find_opt
                (fun (e : Wire.trace_entry) ->
                  e.entry_name = "SELECT uid, deg FROM pol")
                entries
            with
            | Some e -> e
            | None -> Alcotest.fail "traced SELECT not in the store"
          in
          Alcotest.(check string) "node name stamped" "primary" sel.Wire.node;
          Alcotest.(check bool) "trace id minted" true
            (String.length sel.Wire.entry_trace_id > 0);
          let names =
            List.map (fun (s : Wire.span) -> s.span_name) sel.Wire.entry_spans
          in
          List.iter
            (fun stage ->
              Alcotest.(check bool) ("span: " ^ stage) true
                (List.mem stage names))
            [ "parse"; "eval"; "op:seq-scan" ];
          (* operator spans carry their row counts as labels *)
          (match
             List.find_opt
               (fun (s : Wire.span) -> s.span_name = "op:seq-scan")
               sel.Wire.entry_spans
           with
           | Some s ->
             Alcotest.(check (option string)) "rows label" (Some "3")
               (List.assoc_opt "rows" s.labels)
           | None -> Alcotest.fail "no seq-scan span");
          (* propagated context: the server's spans join the caller's
             trace, nested under the caller's span id *)
          let ctx = { Wire.trace_id = "shared-trace-1"; parent_span = 5 } in
          (match
             ok
               (Client.request client
                  (Wire.Exec_traced { sql = "SELECT uid FROM pol"; ctx }))
           with
           | Wire.Rows _ -> ()
           | r -> Alcotest.fail ("expected rows, got " ^ Wire.render_response r));
          let entries = ok (Client.traces client 10) in
          match
            List.find_opt
              (fun (e : Wire.trace_entry) ->
                e.entry_trace_id = "shared-trace-1")
              entries
          with
          | None -> Alcotest.fail "propagated trace id not recorded"
          | Some e ->
            let parse =
              List.find
                (fun (s : Wire.span) -> s.span_name = "parse")
                e.Wire.entry_spans
            in
            Alcotest.(check (option int))
              "top-level span under the caller's span" (Some 5)
              parse.Wire.parent_id))

(* HEALTH over the wire: a fresh server reads ok (cold metrics are
   skipped, not fired); custom rules breach on demand; the verdict is
   exported as a gauge. *)
let test_health_e2e () =
  with_server (fun _server port ->
      with_client port (fun client ->
          load_profiles client;
          match ok (Client.health client) with
          | Wire.Health_ok, [] -> ()
          | level, firing ->
            Alcotest.failf "expected ok/[], got %s with %d firing"
              (match level with
               | Wire.Health_ok -> "ok"
               | Wire.Health_degraded -> "degraded"
               | Wire.Health_critical -> "critical")
              (List.length firing)));
  let breach =
    { Expirel_obs.Health.name = "requests_seen";
      source = Expirel_obs.Health.Metric "expirel_requests_total";
      op = Expirel_obs.Health.Above;
      degraded = 1.0;
      critical = 1e9;
      help = "fires as soon as any request lands"
    }
  in
  let config = { Server.default_config with health_rules = [ breach ] } in
  with_server ~config (fun _server port ->
      with_client port (fun client ->
          ok (Client.ping client);
          (match ok (Client.health client) with
           | Wire.Health_degraded, [ f ] ->
             Alcotest.(check string) "firing rule" "requests_seen"
               f.Wire.rule_name;
             Alcotest.(check bool) "observed value" true (f.Wire.observed >= 1.0);
             Alcotest.(check string) "help carried" "fires as soon as any \
                                                     request lands"
               f.Wire.rule_help
           | _ -> Alcotest.fail "expected one degraded firing rule");
          (* the verdict gauge reflects the last evaluation *)
          let text = ok (Client.metrics client) in
          Alcotest.(check bool) "health gauge exported" true
            (contains ~sub:"expirel_health_status 1" text)))

(* HORIZON over the wire: the forecast carries the subscription
   fan-out, its buckets verify against the ADVANCE that follows, and
   the expiration-storm rule fires *before* the drop — the whole point
   of a forward-looking page. *)
let test_horizon_e2e () =
  let module Horizon = Expirel_obs.Horizon in
  let total_live (r : Horizon.report) =
    List.fold_left (fun acc tb -> acc + Horizon.live tb) 0 r.Horizon.tables
  in
  let soon (r : Horizon.report) =
    List.fold_left
      (fun acc tb -> acc + Horizon.expiring_within tb r.Horizon.window)
      0 r.Horizon.tables
  in
  with_server (fun _server port ->
      with_client port (fun client ->
          load_profiles client;
          ok (Client.subscribe client ~name:"watch" ~query:"SELECT uid FROM pol");
          let r = ok (Client.horizon client) in
          Alcotest.(check int) "three live rows" 3 (total_live r);
          (* texps 10, 10, 15 all sit inside the default 16-tick window *)
          Alcotest.(check int) "all three expire soon" 3 (soon r);
          Alcotest.(check int) "fan-out forecast: one event per drop" 3
            r.Horizon.fanout_events;
          (* the textual SHOW HORIZON goes through the same fan-out-aware
             path, so both surfaces agree *)
          (match exec client "SHOW HORIZON" with
           | Wire.Ok_msg m ->
             Alcotest.(check bool) "SHOW HORIZON reports the fan-out" true
               (contains ~sub:"fanout=3" m)
           | resp ->
             Alcotest.fail ("SHOW HORIZON: " ^ Wire.render_response resp));
          (* per-table restriction, and unknown tables answer Err *)
          let rp = ok (Client.horizon ~table:"pol" client) in
          Alcotest.(check int) "restricted report names one table" 1
            (List.length rp.Horizon.tables);
          (match Client.horizon ~table:"ghost" client with
           | Error _ -> ()
           | Ok _ -> Alcotest.fail "unknown table accepted");
          (* grow the storm: 8 more rows all expiring inside the window *)
          for i = 10 to 17 do
            ok
              (Client.exec_ok client
                 (Printf.sprintf "INSERT INTO pol VALUES (%d, 50) EXPIRES 10" i))
          done;
          (* the rule fires NOW — the clock has not moved, nothing has
             expired yet, the page predicts the storm *)
          (match ok (Client.health client) with
           | Wire.Health_critical, firing ->
             Alcotest.(check bool) "expiration_storm names itself" true
               (List.exists
                  (fun f -> f.Wire.rule_name = "expiration_storm")
                  firing)
           | _ -> Alcotest.fail "storm not predicted before the drop");
          (* the forecast verifies: the ADVANCE drops exactly the
             predicted rows and delivers exactly the forecast events *)
          let before = ok (Client.horizon client) in
          let stats_before = ok (Client.stats client) in
          ok (Client.exec_ok client "ADVANCE TO 20");
          let stats_after = ok (Client.stats client) in
          Alcotest.(check int) "every predicted row dropped" (soon before)
            (stats_after.Wire.tuples_expired - stats_before.Wire.tuples_expired);
          let delivered =
            List.length
              (List.filter
                 (function Wire.Row_expired _ -> true | _ -> false)
                 (Client.events client))
          in
          Alcotest.(check int) "delivered events match the forecast"
            before.Horizon.fanout_events delivered;
          let after = ok (Client.horizon client) in
          Alcotest.(check int) "nothing left in the window" 0 (soon after);
          (* and with the storm behind us, health reads ok again *)
          match ok (Client.health client) with
          | Wire.Health_ok, _ -> ()
          | _ -> Alcotest.fail "health still firing after the storm passed"))

(* The horizon families, build identity and uptime ride the Prometheus
   page, and the whole page passes the shared exposition lint. *)
let test_metrics_horizon_families () =
  with_server (fun _server port ->
      with_client port (fun client ->
          run_observable_workload client;
          let text = ok (Client.metrics client) in
          Test_obs.check_exposition ~what:"server metrics page" text;
          List.iter
            (fun sub ->
              Alcotest.(check bool) ("exposes: " ^ sub) true
                (contains ~sub text))
            [ "# TYPE expirel_horizon_rows histogram";
              "expirel_horizon_rows_bucket{table=\"pol\",le=\"+Inf\"}";
              "expirel_horizon_fanout_events";
              "expirel_horizon_window_ticks 16";
              "expirel_churn_rate{kind=\"arrival\"}";
              "expirel_churn_rate{kind=\"expiration\"}";
              "expirel_horizon_expiring_soon";
              "expirel_build_info{version=\"" ^ Metrics.build_version
              ^ "\",wire_version=\"" ^ string_of_int Wire.version ^ "\"";
              "expirel_uptime_seconds" ]))

(* The plan cache's counters ride the Prometheus page (not only the
   stats record), including the requests_total denominator the
   hit-ratio health rule divides by. *)
let test_plan_cache_metrics () =
  with_server (fun _server port ->
      with_client port (fun client ->
          load_profiles client;
          List.iter
            (fun sql ->
              match exec client sql with
              | Wire.Rows _ -> ()
              | r -> Alcotest.fail ("expected rows, got " ^ Wire.render_response r))
            [ "SELECT uid FROM pol"; "SELECT uid FROM pol";
              "SELECT uid FROM pol" ];
          let text = ok (Client.metrics client) in
          List.iter
            (fun sub ->
              Alcotest.(check bool) ("exposes: " ^ sub) true
                (contains ~sub text))
            [ "# TYPE expirel_plan_cache_hits_total counter";
              "expirel_plan_cache_hits_total 2";
              "expirel_plan_cache_misses_total 1";
              "expirel_plan_cache_requests_total 3";
              "expirel_plan_cache_entries 1" ]))

(* A raising replication provider must cost a metrics section, never a
   request: STATS omits the repl block, METRICS still renders. *)
let test_raising_repl_source () =
  with_server (fun server port ->
      Metrics.set_repl_source (Server.metrics server) (fun () ->
          failwith "provider down");
      with_client port (fun client ->
          load_profiles client;
          let s = ok (Client.stats client) in
          Alcotest.(check bool) "stats: no repl section" true
            (s.Wire.repl = None);
          let text = ok (Client.metrics client) in
          Alcotest.(check bool) "metrics still render" true
            (contains ~sub:"expirel_requests_total" text)))

let suite =
  [ Alcotest.test_case "smoke: rows travel with texp and texp(e)" `Quick test_smoke;
    Alcotest.test_case "subscription events at exact logical times" `Quick
      test_subscription_event_order;
    Alcotest.test_case "unsubscribe requires ownership" `Quick
      test_unsubscribe_ownership;
    Alcotest.test_case "concurrent clients: monotone clock, no expired rows"
      `Quick test_concurrent_clients;
    Alcotest.test_case "connection cap refuses with Overloaded" `Quick
      test_connection_cap;
    Alcotest.test_case "request timeout under a wedged lock" `Quick
      test_request_timeout;
    Alcotest.test_case "METRICS: prometheus exposition" `Quick
      test_metrics_exposition;
    Alcotest.test_case "METRICS: lazy-mode churn label" `Quick
      test_metrics_lazy_mode;
    Alcotest.test_case "METRICS: durable primary gauges" `Quick
      test_metrics_durable_primary;
    Alcotest.test_case "SLOW: span breakdowns over the wire" `Quick
      test_slow_queries_e2e;
    Alcotest.test_case "raising repl provider is contained" `Quick
      test_raising_repl_source;
    Alcotest.test_case "EXPLAIN ANALYZE over the wire" `Quick
      test_explain_analyze_e2e;
    Alcotest.test_case "TRACE: recent traces and context propagation" `Quick
      test_trace_e2e;
    Alcotest.test_case "HEALTH: verdicts, firing rules, status gauge" `Quick
      test_health_e2e;
    Alcotest.test_case "HORIZON: forecast, fan-out, storm rule" `Quick
      test_horizon_e2e;
    Alcotest.test_case "METRICS: horizon families, build info, hygiene"
      `Quick test_metrics_horizon_families;
    Alcotest.test_case "METRICS: plan-cache counters" `Quick
      test_plan_cache_metrics ]
