(* The physical execution layer: planner/executor equivalence with the
   naive evaluator (rows AND expiration times), the join and merge
   kernels' edge cases, the ordered-index range walk's cost bound, and
   the interpreter's generation-keyed plan cache. *)

open Expirel_core
open Expirel_storage
open Expirel_exec
open Expirel_sqlx
module Gen = QCheck2.Gen

let relation_t = Alcotest.testable Relation.pp Relation.equal

let string_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let exec t sql =
  match Interp.exec_sql t sql with
  | Ok outcome -> outcome
  | Error msg -> Alcotest.failf "%S failed: %s" sql msg

let expect_error t sql =
  match Interp.exec_sql t sql with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "expected %S to fail" sql

let msg = function
  | Interp.Msg m -> m
  | Interp.Rows _ -> Alcotest.fail "expected a message, got rows"

(* ---------- planner/executor ≡ naive evaluator ---------- *)

(* Load generated bindings into a real database.  Lazy policy so that
   advancing the clock leaves expired rows physically present — the
   live-filtering paths (Relation.exp, Table.snapshot, Access.select)
   must hide them, which is exactly what the equivalence law checks.
   Generated texps are all >= 1, so every row is insertable at clock 0. *)
let db_of_bindings bindings =
  let db = Database.create ~policy:Database.Lazy () in
  List.iter
    (fun (name, rel) ->
      let arity = Relation.arity rel in
      let columns = List.init arity (fun i -> Printf.sprintf "c%d" (i + 1)) in
      let (_ : Table.t) = Database.create_table db ~name ~columns in
      List.iter
        (fun (tuple, texp) -> Database.insert db name tuple ~texp)
        (Relation.to_list rel))
    bindings;
  (* Index some tables and not others so generated plans mix index scans
     with full scans. *)
  List.iter
    (fun (name, column) ->
      match Database.table db name with
      | Some tbl when Table.arity tbl >= column ->
        Table.create_index tbl ~column
      | Some _ | None -> ())
    [ "R1", 1; "R2", 1; "R2", 2; "R3", 2 ];
  db

let gen_case =
  let open Gen in
  let* e, bindings = Generators.expr_and_env () in
  let* tau = int_range 0 8 in
  return (e, bindings, tau)

let physical_equals_naive (e, bindings, tau) =
  let db = db_of_bindings bindings in
  Database.advance_to db (Time.of_int tau);
  let naive = Database.query db e in
  let physical = Executor.run ~db (Planner.plan ~db e) in
  Relation.equal naive.Eval.relation physical.Eval.relation
  && Time.equal naive.Eval.texp physical.Eval.texp

(* ---------- vectorized ≡ tuple-at-a-time ---------- *)

(* Wider taus than gen_case: generated finite texps top out at 24, so
   taus in 20..30 exercise the all-expired cut (only Inf rows survive)
   alongside all-live (tau 0) and straddling cuts; duplicate texps are
   common at this density, so cut boundaries over coinciding expiration
   times get hit constantly. *)
let gen_batch_case =
  let open Gen in
  let* e, bindings = Generators.expr_and_env () in
  let* tau = oneof [ return 0; int_range 0 8; int_range 20 30 ] in
  return (e, bindings, tau)

(* The tentpole law: a batchified plan returns exactly what the pure
   tuple-at-a-time plan returns — rows AND per-row expiration times AND
   the expression-level texp(e). *)
let batched_equals_tuple (e, bindings, tau) =
  let db = db_of_bindings bindings in
  Database.advance_to db (Time.of_int tau);
  let tuple = Executor.run ~db (Planner.plan ~db ~batch:false e) in
  let batched = Executor.run ~db (Planner.plan ~db e) in
  Relation.equal tuple.Eval.relation batched.Eval.relation
  && Time.equal tuple.Eval.texp batched.Eval.texp

(* exp_tau keeps texp > tau (strict): with texps {5,5,5,7} and tau = 5
   the binary-search cut must land after the LAST of the coinciding 5s,
   not the first — the classic lower/upper-bound off-by-one. *)
let test_cut_duplicate_texp_boundary () =
  let db = Database.create ~policy:Database.Lazy () in
  let (_ : Table.t) = Database.create_table db ~name:"t" ~columns:[ "x" ] in
  List.iter
    (fun (x, texp) ->
      Database.insert db "t"
        (Tuple.of_list [ Value.int x ])
        ~texp:(Time.of_int texp))
    [ 1, 5; 2, 5; 3, 5; 4, 7 ];
  Database.advance_to db (Time.of_int 5);
  (* Project-over-base forces the batched scan (a bare scan would serve
     the cached snapshot tuple-at-a-time). *)
  let e = Algebra.Project ([ 1 ], Algebra.Base "t") in
  let batched = Executor.run ~db (Planner.plan ~db e) in
  let tuple = Executor.run ~db (Planner.plan ~db ~batch:false e) in
  Alcotest.(check int) "only the texp-7 row survives tau=5" 1
    (Relation.cardinal batched.Eval.relation);
  Alcotest.check relation_t "batched = tuple at the boundary"
    tuple.Eval.relation batched.Eval.relation;
  Alcotest.(check int) "live_count_at agrees" 1
    (Relation.live_count_at
       (Table.physical_relation (Database.table_exn db "t"))
       ~tau:(Time.of_int 5))

(* Enough rows for several 1024-row chunks, cut mid-table: wholly
   expired chunks are skipped, wholly live ones accepted, one chunk
   straddles. *)
let test_multi_chunk_cut () =
  let db = Database.create ~policy:Database.Lazy () in
  let (_ : Table.t) = Database.create_table db ~name:"t" ~columns:[ "x" ] in
  let n = 3000 in
  for i = 1 to n do
    Database.insert db "t" (Tuple.of_list [ Value.int i ])
      ~texp:(Time.of_int i)
  done;
  let tau = 1500 in
  Database.advance_to db (Time.of_int tau);
  let table = Database.table_exn db "t" in
  Alcotest.(check int) "three chunks"
    ((n + Relation.chunk_rows - 1) / Relation.chunk_rows)
    (Array.length (Relation.sorted_chunks (Table.physical_relation table)));
  let e = Algebra.Project ([ 1 ], Algebra.Base "t") in
  let batched = Executor.run ~db (Planner.plan ~db e) in
  Alcotest.(check int) "live suffix survives" (n - tau)
    (Relation.cardinal batched.Eval.relation);
  let tuple = Executor.run ~db (Planner.plan ~db ~batch:false e) in
  Alcotest.check relation_t "batched = tuple across chunks"
    tuple.Eval.relation batched.Eval.relation

(* The cost model's scan estimates follow live rows, not physical ones:
   a churny lazily-vacuumed table mostly full of corpses must not look
   expensive to scan. *)
let test_estimate_scales_by_live_rows () =
  let db = Database.create ~policy:Database.Lazy () in
  let (_ : Table.t) = Database.create_table db ~name:"t" ~columns:[ "x" ] in
  for i = 1 to 100 do
    Database.insert db "t" (Tuple.of_list [ Value.int i ])
      ~texp:(Time.of_int (if i <= 90 then 5 else 50))
  done;
  Database.advance_to db (Time.of_int 10);
  let { Plan.physical; _ } = Planner.plan ~db ~batch:false (Algebra.Base "t") in
  Alcotest.(check int) "90 expired-unvacuumed rows don't count" 10
    (Planner.estimate_rows db physical)

(* ---------- hash-join kernel ---------- *)

let rel arity rows =
  Relation.of_list ~arity
    (List.map (fun (vs, t) -> Tuple.of_list vs, Time.of_int t) rows)

(* The equi-join of two binary relations on their first columns, with
   the full predicate spelled out the way the planner extracts it. *)
let join_pred =
  Predicate.Cmp (Predicate.Eq, Predicate.Col 1, Predicate.Col 3)

let gen_join_inputs =
  Gen.pair (Generators.relation ~arity:2) (Generators.relation ~arity:2)

let hash_equals_nested (l, r) =
  Relation.equal
    (Executor.hash_join ~pairs:[ (1, 1) ] ~pred:join_pred l r)
    (Executor.nested_loop join_pred l r)

let test_hash_join_numeric_coercion () =
  (* Value.cmp calls Int 1 and Float 1.0 equal, so the hash join must
     bucket them together. *)
  let l = rel 1 [ [ Value.int 1 ], 5 ] in
  let r = rel 1 [ [ Value.Float 1.0 ], 7 ] in
  let pred = Predicate.Cmp (Predicate.Eq, Predicate.Col 1, Predicate.Col 2) in
  let out = Executor.hash_join ~pairs:[ (1, 1) ] ~pred l r in
  Alcotest.check relation_t "Int 1 joins Float 1.0"
    (Executor.nested_loop pred l r)
    out;
  Alcotest.(check int) "one pair" 1 (Relation.cardinal out)

let test_hash_join_null_keys () =
  (* Null equals nothing under Value.cmp — not even Null — so
     Null-keyed rows join nothing on either side. *)
  let l = rel 1 [ [ Value.Null ], 5; [ Value.int 1 ], 5 ] in
  let r = rel 1 [ [ Value.Null ], 7; [ Value.int 1 ], 7 ] in
  let pred = Predicate.Cmp (Predicate.Eq, Predicate.Col 1, Predicate.Col 2) in
  let out = Executor.hash_join ~pairs:[ (1, 1) ] ~pred l r in
  Alcotest.check relation_t "only the 1-1 pair survives"
    (Executor.nested_loop pred l r)
    out;
  Alcotest.(check int) "one pair" 1 (Relation.cardinal out)

let test_hash_join_nan_keys () =
  (* Value.cmp says NaN = NaN while structural hashing disagrees; the
     kernel must fall back to looping for NaN-keyed probes rather than
     silently losing the pair. *)
  let nan = Value.Float Float.nan in
  let l = rel 1 [ [ nan ], 5; [ Value.int 2 ], 5 ] in
  let r = rel 1 [ [ nan ], 7; [ Value.int 2 ], 7 ] in
  let pred = Predicate.Cmp (Predicate.Eq, Predicate.Col 1, Predicate.Col 2) in
  let out = Executor.hash_join ~pairs:[ (1, 1) ] ~pred l r in
  Alcotest.check relation_t "NaN-NaN and 2-2 both survive"
    (Executor.nested_loop pred l r)
    out;
  Alcotest.(check int) "two pairs" 2 (Relation.cardinal out)

let test_hash_join_multi_key_residual () =
  (* Two equi-conjuncts plus a non-equi residual: bucket equality only
     accelerates, the full predicate decides. *)
  let l =
    rel 2
      [ [ Value.int 1; Value.int 10 ], 5;
        [ Value.int 1; Value.int 1 ], 5;
        [ Value.int 2; Value.int 10 ], 5 ]
  in
  let r =
    rel 2 [ [ Value.int 1; Value.int 3 ], 7; [ Value.int 2; Value.int 9 ], 7 ]
  in
  let pred =
    Predicate.conj
      [ Predicate.Cmp (Predicate.Eq, Predicate.Col 1, Predicate.Col 3);
        Predicate.Cmp (Predicate.Gt, Predicate.Col 2, Predicate.Col 4) ]
  in
  let out = Executor.hash_join ~pairs:[ (1, 1) ] ~pred l r in
  Alcotest.check relation_t "residual filters within buckets"
    (Executor.nested_loop pred l r)
    out;
  Alcotest.(check int) "two survivors" 2 (Relation.cardinal out)

let test_hash_join_empty_sides () =
  let empty = Relation.empty ~arity:1 in
  let one = rel 1 [ [ Value.int 1 ], 5 ] in
  let pred = Predicate.Cmp (Predicate.Eq, Predicate.Col 1, Predicate.Col 2) in
  List.iter
    (fun (l, r) ->
      Alcotest.(check int) "empty join" 0
        (Relation.cardinal (Executor.hash_join ~pairs:[ (1, 1) ] ~pred l r)))
    [ empty, one; one, empty; empty, empty ]

(* ---------- merge kernels ---------- *)

let gen_set_inputs =
  Gen.pair (Generators.relation ~arity:2) (Generators.relation ~arity:2)

let merge_union_law (l, r) = Relation.equal (Executor.merge_union l r) (Ops.union l r)
let merge_intersect_law (l, r) =
  Relation.equal (Executor.merge_intersect l r) (Ops.intersect l r)
let merge_diff_law (l, r) = Relation.equal (Executor.merge_diff l r) (Ops.diff l r)

(* ---------- ordered-index range cost ---------- *)

let test_range_visits_only_the_answer () =
  (* 10k distinct keys, one tuple each; an Exclusive-bounded range must
     examine only the answer's keys plus a constant — the seek is
     O(log n), not a scan from the smallest key. *)
  let idx = Ordered_index.create ~column:1 in
  let n = 10_000 in
  for i = 1 to n do
    Ordered_index.insert idx (Tuple.of_list [ Value.int i ])
  done;
  let visited = ref 0 in
  let answer =
    Ordered_index.range ~visited idx
      ~lo:(Ordered_index.Exclusive (Value.int 9_900))
      ~hi:(Ordered_index.Inclusive (Value.int 9_950))
  in
  Alcotest.(check int) "answer size" 50 (List.length answer);
  Alcotest.(check bool)
    (Printf.sprintf "visited %d <= answer keys + 2" !visited)
    true
    (!visited <= 50 + 2)

(* ---------- the interpreter's plan cache ---------- *)

let stats t = Interp.plan_cache_stats t

let setup_indexed () =
  let t = Interp.create () in
  List.iter
    (fun sql -> ignore (exec t sql))
    [ "CREATE TABLE pol (uid, deg)";
      "INSERT INTO pol VALUES (1, 25) EXPIRES 10";
      "INSERT INTO pol VALUES (2, 25) EXPIRES 15";
      "INSERT INTO pol VALUES (3, 35) EXPIRES 10" ];
  t

let test_plan_cache_hits () =
  let t = setup_indexed () in
  let before = stats t in
  ignore (exec t "SELECT uid FROM pol WHERE deg = 25");
  let after_first = stats t in
  Alcotest.(check int) "first run misses" (before.Interp.misses + 1)
    after_first.Interp.misses;
  ignore (exec t "SELECT uid FROM pol WHERE deg = 25");
  ignore (exec t "SELECT uid FROM pol WHERE deg = 25");
  let after = stats t in
  Alcotest.(check int) "reruns hit" (after_first.Interp.hits + 2)
    after.Interp.hits;
  Alcotest.(check int) "no further misses" after_first.Interp.misses
    after.Interp.misses;
  Alcotest.(check bool) "cache holds entries" true (after.Interp.entries >= 1)

let test_plan_cache_invalidated_by_ddl () =
  let t = setup_indexed () in
  ignore (exec t "SELECT uid FROM pol WHERE deg = 25");
  ignore (exec t "SELECT uid FROM pol WHERE deg = 25");
  let cached = stats t in
  (* Any DDL bumps the catalog generation; the same statement must
     replan rather than serve a stale physical plan. *)
  ignore (exec t "CREATE TABLE other (x)");
  ignore (exec t "SELECT uid FROM pol WHERE deg = 25");
  let after_create = stats t in
  Alcotest.(check int) "CREATE TABLE forces a replan" (cached.Interp.misses + 1)
    after_create.Interp.misses;
  ignore (exec t "CREATE INDEX ON pol (deg)");
  ignore (exec t "SELECT uid FROM pol WHERE deg = 25");
  let after_index = stats t in
  Alcotest.(check int) "CREATE INDEX forces a replan"
    (after_create.Interp.misses + 1)
    after_index.Interp.misses;
  ignore (exec t "DROP TABLE other");
  ignore (exec t "SELECT uid FROM pol WHERE deg = 25");
  let after_drop = stats t in
  Alcotest.(check int) "DROP TABLE forces a replan"
    (after_index.Interp.misses + 1)
    after_drop.Interp.misses

let test_index_ddl_changes_explain () =
  let t = setup_indexed () in
  let explain () = msg (exec t "EXPLAIN SELECT uid FROM pol WHERE deg = 25") in
  Alcotest.(check bool) "seq scan before the index" true
    (string_contains (explain ()) "seq-scan");
  ignore (exec t "CREATE INDEX ON pol (deg)");
  Alcotest.(check bool) "index scan after CREATE INDEX" true
    (string_contains (explain ()) "index-scan");
  ignore (exec t "DROP INDEX ON pol (deg)");
  Alcotest.(check bool) "seq scan after DROP INDEX" true
    (string_contains (explain ()) "seq-scan")

let test_indexed_query_results_unchanged () =
  (* Indexes change access paths, never answers. *)
  let t = setup_indexed () in
  let run () =
    match exec t "SELECT uid FROM pol WHERE deg = 25" with
    | Interp.Rows { relation; _ } -> relation
    | Interp.Msg m -> Alcotest.failf "expected rows, got %S" m
  in
  let before = run () in
  ignore (exec t "CREATE INDEX ON pol (deg)");
  Alcotest.check relation_t "same rows through the index" before (run ())

let test_index_ddl_errors () =
  let t = setup_indexed () in
  expect_error t "CREATE INDEX ON nope (deg)";
  expect_error t "CREATE INDEX ON pol (nope)";
  expect_error t "DROP INDEX ON pol (nope)"

(* ---------- EXPLAIN ANALYZE: profiled execution ---------- *)

let test_explain_analyze_counts () =
  let t = setup_indexed () in
  let text = msg (exec t "EXPLAIN ANALYZE SELECT uid FROM pol WHERE deg = 25") in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("reports: " ^ sub) true (string_contains text sub))
    [ "seq-scan pol";
      (* per-operator annotations: estimate, actual rows, timing *)
      "(est=";
      "rows=2";
      "dropped=0";
      "time=";
      (* the summary block *)
      "rows: 2";
      "texp(e) now:";
      "expired dropped: 0";
      "total:" ];
  (* the profiled run still goes through the plan cache *)
  let before = stats t in
  ignore (exec t "EXPLAIN ANALYZE SELECT uid FROM pol WHERE deg = 25");
  Alcotest.(check int) "EXPLAIN ANALYZE hits the plan cache"
    (before.Interp.hits + 1) (stats t).Interp.hits

(* Under lazy removal, expired tuples stay physically present until a
   vacuum; the scan's dropped counter is exactly that churn. *)
let test_explain_analyze_dropped () =
  let t = Interp.create ~policy:Database.Lazy () in
  List.iter
    (fun sql -> ignore (exec t sql))
    [ "CREATE TABLE pol (uid, deg)";
      "INSERT INTO pol VALUES (1, 25) EXPIRES 10";
      "INSERT INTO pol VALUES (2, 25) EXPIRES 15";
      "INSERT INTO pol VALUES (3, 35) EXPIRES 10";
      "ADVANCE TO 12" ];
  let text = msg (exec t "EXPLAIN ANALYZE SELECT uid FROM pol") in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("reports: " ^ sub) true (string_contains text sub))
    [ "dropped=2"; "rows=1"; "expired dropped: 2"; "rows: 1" ];
  (* answers are unchanged by profiling *)
  match exec t "SELECT uid FROM pol" with
  | Interp.Rows { relation; _ } ->
    Alcotest.(check int) "plain run agrees" 1 (Relation.cardinal relation)
  | Interp.Msg m -> Alcotest.failf "expected rows, got %S" m

(* EXPLAIN tags every operator with its execution mode; EXPLAIN ANALYZE
   additionally reports batch counts and the chunk-level cut's savings
   on scans. *)
let test_explain_mode_tags () =
  let t = setup_indexed () in
  let sel = msg (exec t "EXPLAIN SELECT uid FROM pol WHERE deg = 25") in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("select explain has: " ^ sub) true
        (string_contains sel sub))
    [ "batch [materialise boundary]"; "[batch]"; "seq-scan pol" ];
  Alcotest.(check bool) "fully vectorized select has no tuple operator"
    false
    (string_contains sel "[tuple]");
  let agg = msg (exec t "EXPLAIN SELECT deg, COUNT(*) FROM pol GROUP BY deg") in
  Alcotest.(check bool) "aggregate node runs tuple-at-a-time" true
    (string_contains agg "[tuple]");
  Alcotest.(check bool) "its scan child is batched" true
    (string_contains agg "[batch]")

let test_explain_analyze_cut_skipped () =
  let t = Interp.create ~policy:Database.Lazy () in
  List.iter
    (fun sql -> ignore (exec t sql))
    [ "CREATE TABLE pol (uid, deg)";
      "INSERT INTO pol VALUES (1, 25) EXPIRES 10";
      "INSERT INTO pol VALUES (2, 25) EXPIRES 15";
      "INSERT INTO pol VALUES (3, 35) EXPIRES 10";
      "ADVANCE TO 12" ];
  let text = msg (exec t "EXPLAIN ANALYZE SELECT uid FROM pol") in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("reports: " ^ sub) true (string_contains text sub))
    [ "batches="; "cut_skipped=2"; "rows=1" ]

let test_explain_analyze_index_and_join () =
  let t = setup_indexed () in
  ignore (exec t "CREATE INDEX ON pol (deg)");
  let text = msg (exec t "EXPLAIN ANALYZE SELECT uid FROM pol WHERE deg = 25") in
  Alcotest.(check bool) "profiles the index scan" true
    (string_contains text "index-scan");
  Alcotest.(check bool) "index scans report visited" true
    (string_contains text "visited=");
  (* enough rows that the cost model picks the hash join
     (2(l+r) < l*r needs 3x7 here) *)
  ignore (exec t "CREATE TABLE el (uid, kind)");
  for uid = 1 to 7 do
    ignore
      (exec t (Printf.sprintf "INSERT INTO el VALUES (%d, %d) EXPIRES 20" uid (uid * 10)))
  done;
  let join =
    msg
      (exec t
         "EXPLAIN ANALYZE SELECT pol.uid, el.kind FROM pol JOIN el \
          ON pol.uid = el.uid")
  in
  Alcotest.(check bool) "hash join profiled" true
    (string_contains join "hash-join");
  Alcotest.(check bool) "build side size reported" true
    (string_contains join "build=7")

(* ---------- the LRU itself ---------- *)

let test_lru_evicts_stalest () =
  let cache = Lru.create ~capacity:2 in
  Lru.set cache "a" 1;
  Lru.set cache "b" 2;
  Alcotest.(check (option int)) "touch a" (Some 1) (Lru.find cache "a");
  Lru.set cache "c" 3;
  Alcotest.(check int) "still at capacity" 2 (Lru.length cache);
  Alcotest.(check (option int)) "b was stalest" None (Lru.find cache "b");
  Alcotest.(check (option int)) "a survived" (Some 1) (Lru.find cache "a");
  Alcotest.(check (option int)) "c present" (Some 3) (Lru.find cache "c");
  Lru.set cache "c" 4;
  Alcotest.(check (option int)) "replace in place" (Some 4)
    (Lru.find cache "c");
  Alcotest.(check int) "replace keeps size" 2 (Lru.length cache)

let suite =
  [ Generators.qtest "physical plan ≡ naive eval (rows and texps)"
      ~count:300 gen_case physical_equals_naive;
    Generators.qtest "batched plan ≡ tuple plan (rows and texps)"
      ~count:300 gen_batch_case batched_equals_tuple;
    Alcotest.test_case "cut boundary on duplicate texps" `Quick
      test_cut_duplicate_texp_boundary;
    Alcotest.test_case "multi-chunk live cut" `Quick test_multi_chunk_cut;
    Alcotest.test_case "scan estimates scale by live rows" `Quick
      test_estimate_scales_by_live_rows;
    Alcotest.test_case "EXPLAIN: per-operator mode tags" `Quick
      test_explain_mode_tags;
    Alcotest.test_case "EXPLAIN ANALYZE: chunk-cut savings" `Quick
      test_explain_analyze_cut_skipped;
    Generators.qtest "hash join ≡ nested loop" ~count:300 gen_join_inputs
      hash_equals_nested;
    Generators.qtest "merge union ≡ Ops.union" gen_set_inputs merge_union_law;
    Generators.qtest "merge intersect ≡ Ops.intersect" gen_set_inputs
      merge_intersect_law;
    Generators.qtest "merge diff ≡ Ops.diff" gen_set_inputs merge_diff_law;
    Alcotest.test_case "hash join: Int/Float key coercion" `Quick
      test_hash_join_numeric_coercion;
    Alcotest.test_case "hash join: Null keys join nothing" `Quick
      test_hash_join_null_keys;
    Alcotest.test_case "hash join: NaN keys fall back, not vanish" `Quick
      test_hash_join_nan_keys;
    Alcotest.test_case "hash join: multi-key + residual predicate" `Quick
      test_hash_join_multi_key_residual;
    Alcotest.test_case "hash join: empty sides" `Quick
      test_hash_join_empty_sides;
    Alcotest.test_case "range walk visits only the answer" `Quick
      test_range_visits_only_the_answer;
    Alcotest.test_case "plan cache: repeat statements hit" `Quick
      test_plan_cache_hits;
    Alcotest.test_case "plan cache: DDL invalidates" `Quick
      test_plan_cache_invalidated_by_ddl;
    Alcotest.test_case "EXPLAIN tracks index DDL" `Quick
      test_index_ddl_changes_explain;
    Alcotest.test_case "EXPLAIN ANALYZE: per-operator counts" `Quick
      test_explain_analyze_counts;
    Alcotest.test_case "EXPLAIN ANALYZE: expired-dropped churn" `Quick
      test_explain_analyze_dropped;
    Alcotest.test_case "EXPLAIN ANALYZE: index scans and joins" `Quick
      test_explain_analyze_index_and_join;
    Alcotest.test_case "index DDL never changes answers" `Quick
      test_indexed_query_results_unchanged;
    Alcotest.test_case "index DDL errors" `Quick test_index_ddl_errors;
    Alcotest.test_case "LRU eviction order" `Quick test_lru_evicts_stalest ]
