#!/bin/sh
# The full CI gate: compile everything (libraries, CLI, examples and
# benches — so bench/ and examples/ cannot rot even though only test/
# runs) and then the whole test suite, which includes the live TCP
# server smoke/concurrency tests.
set -eux
cd "$(dirname "$0")/../.."
# lib/obs, lib/exec and lib/sketch compile with -warn-error +a (their
# dunes say so); build them alone first so a warning fails fast with a
# small log.
dune build lib/obs
dune build lib/exec
dune build lib/sketch
dune build @all
dune runtest
# Smoke the observability experiment: a live server, a METRICS scrape
# validated line by line, and the slow-query log — end to end.
dune exec bench/main.exe -- obs
# Smoke the physical execution experiment: hash vs nested-loop joins,
# the O(1) live-scan fast path, and the plan cache; refreshes
# BENCH_exec.json.
dune exec bench/main.exe -- exec
# Smoke the sketch experiment end to end (single-pass folds, memory
# vs a materialized relation, 3-way merge, a live 3-shard cluster) at
# a CI-sized event count; the full 10^7 run is for BENCH_sketch.json.
EXPIREL_SKETCH_EVENTS=200000 dune exec bench/main.exe -- sketch
# Smoke the vectorized-executor experiment (live cut, filter kernel,
# batched hash-join probe, chunk-cut accounting — the last fails hard
# if the cut skips fewer rows than the expired half) at a CI-sized row
# count; the full 10^5/10^6 sweep is for BENCH_vexec.json.
EXPIREL_VEXEC_ROWS=20000 dune exec bench/main.exe -- vexec

# Observability end to end through the CLI: a live server, EXPLAIN
# ANALYZE and HEALTH driven over the wire, and the Prometheus page
# scraped and parse-validated sample by sample.
CLI=_build/default/bin/expirel_cli.exe
SERVE_LOG=$(mktemp)
"$CLI" serve --port 0 --node-name ci-primary >"$SERVE_LOG" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/.*listening on [^:]*:\([0-9][0-9]*\).*/\1/p' "$SERVE_LOG")
  [ -n "$PORT" ] && break
  sleep 0.1
done
test -n "$PORT"
"$CLI" connect --port "$PORT" -e "
  CREATE TABLE pol (uid, deg);
  INSERT INTO pol VALUES (1, 25) EXPIRES 10;
  INSERT INTO pol VALUES (2, 25) EXPIRES 15;
  INSERT INTO pol VALUES (3, 35) EXPIRES 20;
  ADVANCE TO 12"
# EXPLAIN ANALYZE: per-operator actuals and the statement footer.
EXPLAIN_OUT=$("$CLI" connect --port "$PORT" -e "EXPLAIN ANALYZE SELECT uid FROM pol WHERE deg = 25")
echo "$EXPLAIN_OUT" | grep -F "seq-scan pol"
echo "$EXPLAIN_OUT" | grep -F "(est="
echo "$EXPLAIN_OUT" | grep -F "rows=1"
echo "$EXPLAIN_OUT" | grep -F "total:"
# Approximate aggregates over the wire: APPROX_COUNT answers with an
# error bound column, SAMPLE returns at most k live rows, and EXPLAIN
# shows the sketch-backed physical operator.
APPROX_OUT=$("$CLI" connect --port "$PORT" -e "SELECT APPROX_COUNT(0.1) FROM pol")
echo "$APPROX_OUT" | grep -F "approx_count, within"
echo "$APPROX_OUT" | grep -F "2, 0"
"$CLI" connect --port "$PORT" -e "SELECT SAMPLE(2) FROM pol" | grep -F "2 row(s)"
"$CLI" connect --port "$PORT" -e "EXPLAIN SELECT APPROX_COUNT(0.1) FROM pol" \
  | grep -F "sketch-count"
# HEALTH: a fresh server must answer ok (exit code 0).
"$CLI" health --port "$PORT"
"$CLI" connect --port "$PORT" -e "HEALTH" | grep -F "health: ok"
# HORIZON: the forward-looking forecast, over the wire keyword, as
# SQL, and through the one-shot subcommand.  After ADVANCE TO 12 two
# rows are live (texp 15 and 20), both inside the 16-tick window.
"$CLI" connect --port "$PORT" -e "HORIZON" | grep -F "horizon now=12"
"$CLI" connect --port "$PORT" -e "SHOW HORIZON" | grep -F "table pol: live=2 soon=2"
"$CLI" horizon --port "$PORT" | grep -F "horizon now=12"
"$CLI" horizon --port "$PORT" --table pol | grep -F "table pol: live=2"
"$CLI" horizon --port "$PORT" --prom | grep -F "# TYPE expirel_horizon_rows histogram"
# TRACE: the statements above left request traces behind, and they
# export as Chrome trace-event JSON.
"$CLI" connect --port "$PORT" -e "TRACE 5" | grep -F "ci-primary"
"$CLI" trace --port "$PORT" --json | grep -F '"traceEvents":['
# Prometheus: scrape the exposition and validate every sample line
# parses (floats or +/-Inf), and the new families are present.
PROM=$(mktemp)
"$CLI" stats --port "$PORT" --prom >"$PROM"
grep -F "# TYPE expirel_plan_cache_hits_total counter" "$PROM"
grep -F "expirel_plan_cache_requests_total" "$PROM"
grep -F "expirel_health_status" "$PROM"
# The forward-looking horizon families and the build identity.
grep -F "# TYPE expirel_horizon_rows histogram" "$PROM"
grep -F 'expirel_horizon_rows_bucket{table="pol"' "$PROM"
grep -F "expirel_horizon_fanout_events" "$PROM"
grep -F 'expirel_churn_rate{kind="arrival"}' "$PROM"
grep -F 'expirel_build_info{version=' "$PROM"
grep -F "expirel_uptime_seconds" "$PROM"
# The sketch queries above left per-sketch memory and live-estimate
# gauges behind.
grep -F 'expirel_sketch_memory_bytes{sketch="approx_count(0.1)"}' "$PROM"
grep -F 'expirel_sketch_live_estimate{sketch="sample(2)"}' "$PROM"
awk '
  /^$/ || /^#/ { next }
  {
    v = $NF
    if (v !~ /^[+-]?([0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?|Inf|NaN)$/) {
      print "unparsable sample: " $0; exit 1
    }
    samples++
  }
  END { if (samples == 0) { print "empty exposition"; exit 1 } }
' "$PROM"
kill "$SERVER_PID" 2>/dev/null || true
rm -f "$SERVE_LOG" "$PROM"

# The sharded cluster end to end through the CLI: boot 3 shards on
# ephemeral ports, route writes, scatter-gather a read, EXPLAIN
# ANALYZE across every shard, check one trace id spans coordinator
# and shards, and scrape the cluster's Prometheus counters.
CLUSTER_LOG=$(mktemp)
"$CLI" cluster serve --shards 3 --base-port 0 >"$CLUSTER_LOG" 2>&1 &
CLUSTER_PID=$!
trap 'kill "$SERVER_PID" "$CLUSTER_PID" 2>/dev/null || true' EXIT
SHARD_ARGS=""
for _ in $(seq 1 100); do
  SHARD_ARGS=$(sed -n 's/^shard [0-9] listening on \([^:]*:[0-9][0-9]*\)$/--shard \1/p' "$CLUSTER_LOG" | tr '\n' ' ')
  [ "$(echo "$SHARD_ARGS" | wc -w)" = 6 ] && break
  sleep 0.1
done
test "$(echo "$SHARD_ARGS" | wc -w)" = 6
# shellcheck disable=SC2086
CLUSTER_OUT=$("$CLI" cluster connect $SHARD_ARGS -e "
  CREATE TABLE pol (uid, deg);
  INSERT INTO pol VALUES (1, 25) EXPIRES 10;
  INSERT INTO pol VALUES (2, 25) EXPIRES 15;
  INSERT INTO pol VALUES (3, 35) EXPIRES 20;
  SELECT uid, deg FROM pol;
  SELECT COUNT(*) FROM pol;
  SELECT deg, COUNT(*) FROM pol GROUP BY deg ORDER BY deg;
  SELECT AVG(deg) FROM pol;
  CREATE TABLE tags (uid, tag);
  INSERT INTO tags VALUES (9, 25) EXPIRES 30;
  SELECT * FROM pol JOIN tags ON pol.deg = tags.tag;
  SELECT APPROX_COUNT(0.1) FROM pol;
  SELECT SAMPLE(2) FROM pol;
  EXPLAIN ANALYZE SELECT uid FROM pol WHERE deg = 25;
  TRACE 30;
  SHARDS;
  HORIZON;
  SHOW HORIZON;
  METRICS")
# DDL broadcast to all three shards, rows scatter-gathered back.
echo "$CLUSTER_OUT" | grep -F "table pol created (on 3 shard(s))"
echo "$CLUSTER_OUT" | grep -F "3 row(s)"
# Global COUNT combines per-shard partials instead of refusing; the
# sketch keywords answer from merged per-shard partial sketches.
echo "$CLUSTER_OUT" | grep -F "texp | count"
echo "$CLUSTER_OUT" | grep -E '10 \| 3$'
# Distributed GROUP BY: per-shard expiration-slice partials combine at
# the coordinator — groups straddling shards unify, per-row texps are
# the groups' change points.
echo "$CLUSTER_OUT" | grep -F "texp | deg, count"
echo "$CLUSTER_OUT" | grep -E '10 \| 25, 2$'
echo "$CLUSTER_OUT" | grep -E '20 \| 35, 1$'
# AVG travels as SUM + COUNT and is divided once, at the coordinator.
echo "$CLUSTER_OUT" | grep -F "texp | avg(deg)"
echo "$CLUSTER_OUT" | grep -E '10 \| 28\.3333$'
# The broadcast hash join ships the small side (tags) to every shard;
# each joins it against its disjoint pol fragment.
echo "$CLUSTER_OUT" | grep -F "texp | pol.uid, deg, tags.uid, tag"
echo "$CLUSTER_OUT" | grep -E '10 \| 1, 25, 9, 25$'
echo "$CLUSTER_OUT" | grep -E '15 \| 2, 25, 9, 25$'
echo "$CLUSTER_OUT" | grep -F "approx_count, within"
echo "$CLUSTER_OUT" | grep -F "2 row(s)"
# EXPLAIN ANALYZE fans out: one annotated plan per shard.
test "$(echo "$CLUSTER_OUT" | grep -cF -- '--- shard ')" = 3
echo "$CLUSTER_OUT" | grep -F "total:"
# One trace id spans the coordinator and at least one shard.
TID=$(echo "$CLUSTER_OUT" | awk '$2 == "coordinator" && /SELECT uid, deg/ { print $1; exit }')
test -n "$TID"
echo "$CLUSTER_OUT" | awk -v tid="$TID" '$1 == tid && $2 ~ /^shard-/ { found = 1 } END { exit !found }'
echo "$CLUSTER_OUT" | grep -F "rpc:shard-"
# Every shard reported a reachable partition summary.
test "$(echo "$CLUSTER_OUT" | grep -c "^shard [0-9]: reachable")" = 3
# The merged horizon names every table with its per-shard breakdown
# (HORIZON keyword and SHOW HORIZON statement agree), and the
# cluster-wide forecast gauges ride the coordinator's METRICS page.
echo "$CLUSTER_OUT" | grep -F "shard 0: live="
echo "$CLUSTER_OUT" | grep -F "table pol: live=3 soon=2"
echo "$CLUSTER_OUT" | grep -F "table tags: live=1 soon=0"
test "$(echo "$CLUSTER_OUT" | grep -cF "horizon now=0")" = 2
echo "$CLUSTER_OUT" | grep -E 'expirel_cluster_live_rows 4'
echo "$CLUSTER_OUT" | grep -E 'expirel_cluster_horizon_expiring_soon 2'
echo "$CLUSTER_OUT" | grep -F 'expirel_build_info{version='
# The cluster metric families are present, with per-shard routing
# counters, and every sample line parses like the server's page does.
CLUSTER_PROM=$(mktemp)
echo "$CLUSTER_OUT" | sed -n '/^# HELP expirel_cluster/,$p' >"$CLUSTER_PROM"
echo "$CLUSTER_OUT" | grep -F "# TYPE expirel_cluster_shard_requests_total counter"
echo "$CLUSTER_OUT" | grep -E 'expirel_cluster_shard_requests_total\{shard="0"\} [1-9]'
echo "$CLUSTER_OUT" | grep -F "expirel_cluster_pruned_shards_total"
echo "$CLUSTER_OUT" | grep -E 'expirel_cluster_shard_map_version [1-9]'
echo "$CLUSTER_OUT" | grep -E 'expirel_cluster_shards 3'
awk '
  /^$/ || /^#/ { next }
  !/^expirel_/ { next }
  {
    v = $NF
    if (v !~ /^[+-]?([0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?|Inf|NaN)$/) {
      print "unparsable sample: " $0; exit 1
    }
    samples++
  }
  END { if (samples == 0) { print "empty exposition"; exit 1 } }
' "$CLUSTER_PROM"
kill "$CLUSTER_PID" 2>/dev/null || true
rm -f "$CLUSTER_LOG" "$CLUSTER_PROM"
