#!/bin/sh
# The full CI gate: compile everything (libraries, CLI, examples and
# benches — so bench/ and examples/ cannot rot even though only test/
# runs) and then the whole test suite, which includes the live TCP
# server smoke/concurrency tests.
set -eux
cd "$(dirname "$0")/../.."
# lib/obs and lib/exec compile with -warn-error +a (their dunes say so);
# build them alone first so a warning fails fast with a small log.
dune build lib/obs
dune build lib/exec
dune build @all
dune runtest
# Smoke the observability experiment: a live server, a METRICS scrape
# validated line by line, and the slow-query log — end to end.
dune exec bench/main.exe -- obs
# Smoke the physical execution experiment: hash vs nested-loop joins,
# the O(1) live-scan fast path, and the plan cache; refreshes
# BENCH_exec.json.
dune exec bench/main.exe -- exec
