#!/bin/sh
# The full CI gate: compile everything (libraries, CLI, examples and
# benches — so bench/ and examples/ cannot rot even though only test/
# runs) and then the whole test suite, which includes the live TCP
# server smoke/concurrency tests.
set -eux
cd "$(dirname "$0")/../.."
dune build @all
dune runtest
