#!/bin/sh
# The full CI gate: compile everything (libraries, CLI, examples and
# benches — so bench/ and examples/ cannot rot even though only test/
# runs) and then the whole test suite, which includes the live TCP
# server smoke/concurrency tests.
set -eux
cd "$(dirname "$0")/../.."
# lib/obs compiles with -warn-error +a (its dune says so); build it
# alone first so an instrumentation warning fails fast with a small log.
dune build lib/obs
dune build @all
dune runtest
# Smoke the observability experiment: a live server, a METRICS scrape
# validated line by line, and the slow-query log — end to end.
dune exec bench/main.exe -- obs
